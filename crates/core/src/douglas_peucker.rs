//! Top-down splitting algorithms: Douglas–Peucker, TD-TR and TD-SP.
//!
//! The top-down class (paper §2.1) recursively partitions the series at
//! the data point farthest from the current anchor–float approximation
//! until every point is within the threshold. With the perpendicular
//! criterion this is the classic Douglas–Peucker ("NDP" in the paper's
//! experiments, Fig. 7); with the synchronized time-ratio criterion it is
//! the paper's **TD-TR** (§3.2); with the blended spatiotemporal
//! criterion it is **TD-SP** (§3.3, see [`crate::TdSp`]).
//!
//! Three engines are provided:
//!
//! * [`TopDown::compress`] / [`Compressor::compress_into`] — iterative
//!   with an explicit stack borrowed from a [`Workspace`] (no
//!   recursion-depth hazard, no per-call allocation when warm); the
//!   production path;
//! * [`TopDown::compress_recursive`] — direct transcription of the
//!   textbook recursion, kept as an executable specification and used by
//!   equivalence tests and the ablation bench;
//! * [`TopDown::compress_to_count`] — the "number of data points" halting
//!   condition from the paper's §2 list: greedily keeps the globally
//!   worst-represented points until a target count is reached.
//!
//! Complexity: `O(N²)` worst case, `O(N log N)` typical, matching the
//! paper's statement for the original algorithm. (Hershberger & Snoeyink's
//! `O(N log N)` path-hull variant applies only to the perpendicular
//! criterion; the SED criterion has no such convexity structure, so we
//! keep the uniform implementation for all three.) For multi-threshold
//! evaluation see [`TopDown::sweep`], which exploits the
//! threshold-independence of the split tree.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::criterion::{Criterion, SegmentCriterion};
use crate::obs::AlgoRun;
use crate::result::{CompressionResult, CompressionResultBuf, Compressor};
use crate::workspace::Workspace;
use traj_geom::TrajView;
use traj_model::{Fix, Trajectory};

/// Generic top-down splitter over a [`Criterion`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopDown {
    criterion: Criterion,
}

/// Classic Douglas–Peucker on perpendicular distance — the paper's NDP
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DouglasPeucker(TopDown);

/// Top-down time-ratio — the paper's TD-TR (§3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdTr(TopDown);

impl TopDown {
    /// Creates a top-down splitter over `criterion`.
    ///
    /// # Panics
    /// Panics unless the criterion's thresholds are valid (finite
    /// non-negative distance epsilon; non-NaN non-negative speed
    /// epsilon).
    pub fn new(criterion: Criterion) -> Self {
        criterion.validate();
        TopDown { criterion }
    }

    /// Top-down splitting on perpendicular distance (NDP) with threshold
    /// `epsilon` metres.
    pub fn perpendicular(epsilon: f64) -> Self {
        TopDown::new(Criterion::Perpendicular { epsilon })
    }

    /// Top-down splitting on synchronized distance (TD-TR) with
    /// threshold `epsilon` metres.
    pub fn time_ratio(epsilon: f64) -> Self {
        TopDown::new(Criterion::TimeRatio { epsilon })
    }

    /// Top-down splitting on the blended spatiotemporal criterion
    /// (TD-SP) with SED threshold `epsilon` metres and speed threshold
    /// `speed_epsilon` m/s.
    pub fn time_ratio_speed(epsilon: f64, speed_epsilon: f64) -> Self {
        TopDown::new(Criterion::TimeRatioSpeed { epsilon, speed_epsilon })
    }

    /// The distance threshold, metres.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.criterion.epsilon()
    }

    /// The splitting criterion.
    #[inline]
    pub fn criterion(&self) -> Criterion {
        self.criterion
    }

    /// Static algorithm-family name for metric labels (threshold-free, so
    /// label cardinality stays bounded).
    pub(crate) fn family(&self) -> &'static str {
        match self.criterion {
            Criterion::Perpendicular { .. } => "ndp",
            Criterion::TimeRatio { .. } => "td-tr",
            Criterion::TimeRatioSpeed { .. } => "td-sp",
        }
    }

    /// Number of criterion evaluations one `farthest(lo, hi)` call
    /// performs.
    #[inline]
    pub(crate) fn evals(lo: usize, hi: usize) -> u64 {
        (hi - lo).saturating_sub(1) as u64
    }

    /// Interior point of `fixes[lo..=hi]` with the maximum split-ranking
    /// value relative to the `lo`–`hi` approximation, or `None` when
    /// there is no interior point. Ties resolve to the first (lowest
    /// index) maximum.
    pub(crate) fn farthest(&self, fixes: &[Fix], lo: usize, hi: usize) -> Option<(usize, f64)> {
        if hi <= lo + 1 {
            return None;
        }
        let mut best = (lo + 1, f64::NEG_INFINITY);
        for i in lo + 1..hi {
            let d = self.criterion.split_value(fixes, lo, hi, i);
            if d > best.1 {
                best = (i, d);
            }
        }
        Some(best)
    }

    /// Columnar [`TopDown::farthest`]: one batched
    /// [`SegmentCriterion::scan_segment`] over the structure-of-arrays
    /// view instead of a per-point dispatch loop. Bit-identical to the
    /// scalar form (same seed, same strict `>` first-maximum rule).
    pub(crate) fn farthest_view(&self, v: TrajView<'_>, lo: usize, hi: usize) -> Option<(usize, f64)> {
        if hi <= lo + 1 {
            return None;
        }
        let d = self.criterion.scan_segment(v, lo, hi);
        Some((d.split, d.value))
    }

    /// Iterative (explicit stack) kernel — the production engine behind
    /// both `compress` and `compress_into`.
    fn kernel(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        let n = traj.len();
        ws.begin(n);
        if n <= 2 {
            out.set_identity(n);
            return;
        }
        let _span = match self.criterion {
            Criterion::Perpendicular { .. } => traj_obs::span!("ndp.compress", points = n),
            Criterion::TimeRatio { .. } => traj_obs::span!("td_tr.compress", points = n),
            Criterion::TimeRatioSpeed { .. } => traj_obs::span!("td_sp.compress", points = n),
        };
        let mut run = AlgoRun::new();
        ws.bind_columns(traj);
        let threshold = self.criterion.split_threshold();
        ws.keep.resize(n, false);
        ws.keep[0] = true;
        ws.keep[n - 1] = true;
        // The third element is the split depth, fed to the `dp_depth`
        // histogram (max over the run ≙ the recursion depth the textbook
        // formulation would reach).
        ws.stack.push((0, n - 1, 1));
        // Field-disjoint borrows: the view reads `ws.cols` while the loop
        // mutates `ws.stack` / `ws.keep`.
        let v = ws.cols.view();
        while let Some((lo, hi, depth)) = ws.stack.pop() {
            run.depth(u64::from(depth));
            run.sed_evals(Self::evals(lo, hi));
            if let Some((split, dist)) = self.farthest_view(v, lo, hi) {
                if dist > threshold {
                    ws.keep[split] = true;
                    ws.stack.push((lo, split, depth + 1));
                    ws.stack.push((split, hi, depth + 1));
                }
            }
        }
        out.reset(n);
        out.kept
            .extend(ws.keep.iter().enumerate().filter_map(|(i, &k)| k.then_some(i)));
        run.flush(self.family(), n, out.kept.len());
    }

    /// Reference recursion, equivalent to [`TopDown::compress`]; exposed
    /// for equivalence testing and the `ablation_dp_variants` benchmark.
    pub fn compress_recursive(&self, traj: &Trajectory) -> CompressionResult {
        let n = traj.len();
        if n <= 2 {
            return CompressionResult::identity(n);
        }
        let fixes = traj.fixes();
        let mut run = AlgoRun::new();
        let mut kept = vec![0usize];
        self.recurse(fixes, 0, n - 1, &mut kept, 1, &mut run);
        kept.push(n - 1);
        let result = CompressionResult::new(kept, n);
        run.flush(self.family(), n, result.kept_len());
        result
    }

    fn recurse(
        &self,
        fixes: &[Fix],
        lo: usize,
        hi: usize,
        kept: &mut Vec<usize>,
        depth: u32,
        run: &mut AlgoRun,
    ) {
        run.depth(u64::from(depth));
        run.sed_evals(Self::evals(lo, hi));
        if let Some((split, dist)) = self.farthest(fixes, lo, hi) {
            if dist > self.criterion.split_threshold() {
                self.recurse(fixes, lo, split, kept, depth + 1, run);
                kept.push(split);
                self.recurse(fixes, split, hi, kept, depth + 1, run);
            }
        }
    }

    /// Top-down splitting with the *point-count* halting condition:
    /// repeatedly splits the segment whose worst point is globally the
    /// farthest, until `target` points are kept (or no split remains).
    ///
    /// For `target <= 2` only the endpoints survive. The result keeps the
    /// same points an ε-threshold run would keep for the ε equal to the
    /// largest remaining deviation, making the two halting conditions
    /// consistent.
    pub fn compress_to_count(&self, traj: &Trajectory, target: usize) -> CompressionResult {
        let n = traj.len();
        if n <= 2 || target >= n {
            return CompressionResult::identity(n);
        }
        let fixes = traj.fixes();

        /// Max-heap entry ordered by deviation.
        struct Cand {
            dist: f64,
            split: usize,
            lo: usize,
            hi: usize,
        }
        impl PartialEq for Cand {
            fn eq(&self, o: &Self) -> bool {
                self.dist == o.dist
            }
        }
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, o: &Self) -> Ordering {
                self.dist.partial_cmp(&o.dist).unwrap_or(Ordering::Equal)
            }
        }

        let mut run = AlgoRun::new();
        let mut heap = BinaryHeap::new();
        let push = |heap: &mut BinaryHeap<Cand>, run: &mut AlgoRun, lo: usize, hi: usize| {
            run.sed_evals(Self::evals(lo, hi));
            if let Some((split, dist)) = self.farthest(fixes, lo, hi) {
                heap.push(Cand { dist, split, lo, hi });
            }
        };
        push(&mut heap, &mut run, 0, n - 1);

        let mut keep = vec![false; n];
        keep[0] = true;
        keep[n - 1] = true;
        let mut count = 2usize;
        while count < target.max(2) {
            let Some(c) = heap.pop() else { break };
            run.heap_pop();
            keep[c.split] = true;
            count += 1;
            push(&mut heap, &mut run, c.lo, c.split);
            push(&mut heap, &mut run, c.split, c.hi);
        }
        let kept = keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect();
        let result = CompressionResult::new(kept, n);
        run.flush(self.family(), n, result.kept_len());
        result
    }
}

impl Compressor for TopDown {
    fn name(&self) -> String {
        match self.criterion {
            Criterion::Perpendicular { epsilon } => format!("ndp({epsilon}m)"),
            Criterion::TimeRatio { epsilon } => format!("td-tr({epsilon}m)"),
            Criterion::TimeRatioSpeed { epsilon, speed_epsilon } => {
                format!("td-sp({epsilon}m,{speed_epsilon}m/s)")
            }
        }
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        self.kernel(traj, &mut ws, &mut out);
        out.take()
    }

    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        self.kernel(traj, ws, out);
    }
}

impl DouglasPeucker {
    /// Douglas–Peucker with perpendicular threshold `epsilon` metres.
    pub fn new(epsilon: f64) -> Self {
        DouglasPeucker(TopDown::perpendicular(epsilon))
    }

    /// The underlying generic splitter.
    pub fn inner(&self) -> &TopDown {
        &self.0
    }
}

impl TdTr {
    /// TD-TR with synchronized-distance threshold `epsilon` metres.
    pub fn new(epsilon: f64) -> Self {
        TdTr(TopDown::time_ratio(epsilon))
    }

    /// The underlying generic splitter.
    pub fn inner(&self) -> &TopDown {
        &self.0
    }
}

impl Compressor for DouglasPeucker {
    fn name(&self) -> String {
        self.0.name()
    }
    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        self.0.compress(traj)
    }
    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        self.0.compress_into(traj, ws, out)
    }
}

impl Compressor for TdTr {
    fn name(&self) -> String {
        self.0.name()
    }
    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        self.0.compress(traj)
    }
    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        self.0.compress_into(traj, ws, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::sed;

    /// The paper's Fig. 1 shape: mostly-straight series with one spike.
    fn spike() -> Trajectory {
        Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (1.0, 10.0, 0.5),
            (2.0, 20.0, -0.5),
            (3.0, 30.0, 40.0), // spike
            (4.0, 40.0, 0.3),
            (5.0, 50.0, -0.2),
            (6.0, 60.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn dp_keeps_the_spike() {
        let r = DouglasPeucker::new(5.0).compress(&spike());
        assert!(r.contains(3), "spike must survive: {:?}", r.kept());
        assert!(r.kept_len() < 7);
    }

    #[test]
    fn dp_epsilon_zero_keeps_everything_noncollinear() {
        let r = DouglasPeucker::new(0.0).compress(&spike());
        assert_eq!(r.kept_len(), 7);
    }

    #[test]
    fn dp_collinear_points_collapse_to_endpoints() {
        let t = Trajectory::from_triples((0..50).map(|i| (i as f64, i as f64 * 3.0, 0.0)))
            .unwrap();
        let r = DouglasPeucker::new(0.5).compress(&t);
        assert_eq!(r.kept(), &[0, 49]);
    }

    #[test]
    fn tdtr_keeps_temporal_outliers_dp_misses() {
        // Object moves along a straight road but dwells: spatially
        // collinear, temporally violent. SED sees it; perpendicular
        // doesn't.
        let t = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 10.0, 0.0),
            (100.0, 20.0, 0.0), // long dwell before this point
            (110.0, 200.0, 0.0),
        ])
        .unwrap();
        let dp = DouglasPeucker::new(5.0).compress(&t);
        assert_eq!(dp.kept(), &[0, 3], "perpendicular metric sees a straight line");
        let tr = TdTr::new(5.0).compress(&t);
        assert!(tr.kept_len() > 2, "SED must keep interior points: {:?}", tr.kept());
    }

    #[test]
    fn iterative_equals_recursive() {
        for eps in [0.0, 1.0, 5.0, 50.0] {
            for td in [TopDown::perpendicular(eps), TopDown::time_ratio(eps)] {
                assert_eq!(
                    td.compress(&spike()).kept(),
                    td.compress_recursive(&spike()).kept(),
                    "eps={eps} criterion={:?}",
                    td.criterion()
                );
            }
        }
    }

    #[test]
    fn compress_into_reuses_workspace() {
        let t = spike();
        let td = TopDown::time_ratio(3.0);
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        for _ in 0..3 {
            td.compress_into(&t, &mut ws, &mut out);
            assert_eq!(out.to_result(), td.compress(&t));
        }
    }

    #[test]
    fn result_respects_epsilon_bound_tdtr() {
        // Post-condition of top-down splitting: every discarded point is
        // within eps of its covering approximation segment.
        let t = spike();
        let eps = 3.0;
        let r = TdTr::new(eps).compress(&t);
        let kept = r.kept();
        for w in kept.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            for i in lo + 1..hi {
                let d = sed(&t.fixes()[lo], &t.fixes()[hi], &t.fixes()[i]);
                assert!(d <= eps, "point {i} deviates {d} > {eps}");
            }
        }
    }

    #[test]
    fn compress_to_count_hits_target() {
        let t = spike();
        for target in 2..=7 {
            let r = TopDown::time_ratio(0.0).compress_to_count(&t, target);
            assert_eq!(r.kept_len(), target, "target {target}");
        }
    }

    #[test]
    fn compress_to_count_keeps_worst_point_first() {
        let r = TopDown::perpendicular(0.0).compress_to_count(&spike(), 3);
        assert_eq!(r.kept(), &[0, 3, 6], "the spike is the worst deviation");
    }

    #[test]
    fn compress_to_count_degenerate_targets() {
        let t = spike();
        let td = TopDown::perpendicular(0.0);
        assert_eq!(td.compress_to_count(&t, 0).kept(), &[0, 6]);
        assert_eq!(td.compress_to_count(&t, 100).kept_len(), 7);
    }

    #[test]
    fn short_inputs_identity() {
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 100.0, 0.0)]).unwrap();
        assert_eq!(DouglasPeucker::new(1.0).compress(&two).kept_len(), 2);
        let one = Trajectory::from_triples([(0.0, 0.0, 0.0)]).unwrap();
        assert_eq!(TdTr::new(1.0).compress(&one).kept_len(), 1);
    }

    #[test]
    fn names_identify_algorithm_and_threshold() {
        assert_eq!(DouglasPeucker::new(30.0).name(), "ndp(30m)");
        assert_eq!(TdTr::new(45.0).name(), "td-tr(45m)");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_negative_epsilon() {
        let _ = TopDown::perpendicular(-1.0);
    }

    /// Deltas only (the registry is global and tests run in parallel).
    #[cfg(feature = "obs")]
    #[test]
    fn compression_flushes_run_metrics() {
        let r = traj_obs::registry();
        let labels: &[(&str, &str)] = &[("algo", "td-tr")];
        let evals = r.counter_with("compress", "sed_evals", labels);
        let points_in = r.counter_with("compress", "points_in", labels);
        let points_out = r.counter_with("compress", "points_out", labels);
        let depth = r.histogram_with("compress", "dp_depth", labels);

        let (e0, i0, o0, d0) = (evals.get(), points_in.get(), points_out.get(), depth.count());
        let result = TdTr::new(5.0).compress(&spike());
        assert!(evals.get() >= e0 + 5, "top-level farthest() alone is 5 evals");
        assert!(points_in.get() >= i0 + 7);
        assert!(points_out.get() >= o0 + result.kept_len() as u64);
        assert!(depth.count() > d0, "one dp_depth observation per run");
    }

    /// Deltas only (the registry is global and tests run in parallel).
    #[cfg(feature = "obs")]
    #[test]
    fn warm_workspace_reuse_is_counted() {
        let r = traj_obs::registry();
        let reuse = r.counter("ws", "reuse");
        let bytes = r.counter("ws", "bytes_saved");
        let td = TopDown::time_ratio(3.0);
        let t = spike();
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        td.compress_into(&t, &mut ws, &mut out); // cold: buffers empty
        let (r0, b0) = (reuse.get(), bytes.get());
        td.compress_into(&t, &mut ws, &mut out); // warm
        assert!(reuse.get() > r0, "warm run must count a reuse");
        assert!(bytes.get() > b0, "warm run must credit bytes");
    }

    #[test]
    fn monotone_compression_in_epsilon() {
        // Larger thresholds never keep more points (on this input family).
        let t = spike();
        let mut prev = usize::MAX;
        for eps in [0.0, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0] {
            let k = TdTr::new(eps).compress(&t).kept_len();
            assert!(k <= prev, "eps={eps}: {k} > {prev}");
            prev = k;
        }
    }
}
