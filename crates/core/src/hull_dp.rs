//! Hull-accelerated Douglas–Peucker (after Hershberger & Snoeyink \[17\]).
//!
//! The paper notes that the original Douglas–Peucker algorithm is
//! `O(N²)` and cites Hershberger & Snoeyink's path-hull technique for an
//! `O(N log N)` bound. The key geometric fact is the same one their
//! algorithm exploits: the perpendicular distance to the anchor–float
//! line is `|cross(float − anchor, p − anchor)| / |float − anchor|`,
//! a scaled absolute linear functional — so its maximum over a point set
//! is attained at a **convex-hull vertex** of the set.
//!
//! This implementation builds a monotone-chain hull per recursion node
//! and scans only hull vertices for the farthest point: `O(k log k)`
//! per node and `O(h)` for the query, which is `O(N log N)` in
//! expectation on GPS-like data (hulls of noisy vehicle traces are tiny
//! relative to the subseries). Degenerate worst cases (all points in
//! convex position) fall back to the textbook bound — unlike the full
//! path-hull structure with its split/undo machinery, which guarantees
//! `O(N log N)` but is substantially more code; the honest trade-off is
//! recorded here and measured in the `ablation_dp_variants` bench.
//! Per-node point and hull buffers are borrowed from the shared
//! [`Workspace`] on the `compress_into` path, so a warm workspace makes
//! the whole run allocation-free.
//!
//! Only the **perpendicular** metric has this hull structure: the
//! synchronized distance of TD-TR couples space with time and its
//! maximizer need not be a spatial hull vertex, so there is no TD-TR
//! analogue (one reason the paper keeps the plain top-down scheme).
//!
//! Output: identical kept sets to [`crate::DouglasPeucker`] whenever the
//! farthest point is unique at every split (always, on continuous data);
//! under exact ties the split choice may differ while both outputs
//! satisfy the same ε-postcondition.

use crate::result::{CompressionResult, CompressionResultBuf, Compressor};
use crate::workspace::Workspace;
use traj_geom::{Point2, TrajView};
use traj_model::Trajectory;

/// Douglas–Peucker with hull-accelerated farthest-point queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HullDouglasPeucker {
    epsilon: f64,
}

impl HullDouglasPeucker {
    /// Creates the compressor with perpendicular threshold `epsilon`
    /// metres.
    ///
    /// # Panics
    /// Panics unless `epsilon` is finite and non-negative.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and >= 0"
        );
        HullDouglasPeucker { epsilon }
    }

    /// The distance threshold, metres.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn kernel(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        let n = traj.len();
        ws.begin(n);
        if n <= 2 {
            out.set_identity(n);
            return;
        }
        ws.bind_columns(traj);
        ws.keep.resize(n, false);
        ws.keep[0] = true;
        ws.keep[n - 1] = true;
        ws.stack.push((0, n - 1, 0));
        // Field-disjoint borrows: the view reads `ws.cols` while the loop
        // mutates `ws.stack` / `ws.keep` / the hull scratch buffers.
        let v = ws.cols.view();
        while let Some((lo, hi, _)) = ws.stack.pop() {
            if let Some((split, dist)) = farthest_via_hull(v, lo, hi, &mut ws.pts, &mut ws.hull)
            {
                if dist > self.epsilon {
                    ws.keep[split] = true;
                    ws.stack.push((lo, split, 0));
                    ws.stack.push((split, hi, 0));
                }
            }
        }
        out.reset(n);
        out.kept
            .extend(ws.keep.iter().enumerate().filter_map(|(i, &k)| k.then_some(i)));
    }
}

/// Monotone-chain convex hull over `(original_index, position)` pairs,
/// written into `hull` as original indices, counter-clockwise, collinear
/// points excluded. Input is sorted in place; `hull` is cleared first.
fn convex_hull(pts: &mut Vec<(usize, Point2)>, hull: &mut Vec<usize>) {
    hull.clear();
    pts.sort_unstable_by(|a, b| {
        a.1.x.total_cmp(&b.1.x).then_with(|| a.1.y.total_cmp(&b.1.y))
    });
    pts.dedup_by(|a, b| a.1 == b.1);
    let n = pts.len();
    if n <= 2 {
        hull.extend(pts.iter().map(|&(i, _)| i));
        return;
    }
    fn cross(o: Point2, a: Point2, b: Point2) -> f64 {
        (a - o).cross(b - o)
    }
    // Build with indices into `pts`, remap to original indices at the end.
    // Lower hull.
    for (k, &(_, p)) in pts.iter().enumerate() {
        while hull.len() >= 2
            && cross(pts[hull[hull.len() - 2]].1, pts[hull[hull.len() - 1]].1, p) <= 0.0
        {
            hull.pop();
        }
        hull.push(k);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for (k, &(_, p)) in pts.iter().enumerate().rev().skip(1) {
        while hull.len() >= lower_len
            && cross(pts[hull[hull.len() - 2]].1, pts[hull[hull.len() - 1]].1, p) <= 0.0
        {
            hull.pop();
        }
        hull.push(k);
    }
    hull.pop(); // first point repeated
    for h in hull.iter_mut() {
        *h = pts[*h].0;
    }
}

/// Farthest interior point (by perpendicular distance to the `lo`–`hi`
/// line) among indices `lo+1..hi` of the columnar view, via the convex
/// hull. `pts` and `hull` are scratch buffers; their contents on entry
/// are ignored. Positions read through [`TrajView::point`] are bitwise
/// the fix positions, so the output matches the former slice form.
fn farthest_via_hull(
    v: TrajView<'_>,
    lo: usize,
    hi: usize,
    pts: &mut Vec<(usize, Point2)>,
    hull: &mut Vec<usize>,
) -> Option<(usize, f64)> {
    if hi <= lo + 1 {
        return None;
    }
    let seg = traj_geom::Segment::new(v.point(lo), v.point(hi));
    pts.clear();
    pts.extend((lo + 1..hi).map(|i| (i, v.point(i))));
    convex_hull(pts, hull);
    let mut best: Option<(usize, f64)> = None;
    for &i in hull.iter() {
        let d = seg.line_distance(v.point(i));
        match best {
            Some((_, bd)) if d <= bd => {}
            _ => best = Some((i, d)),
        }
    }
    // All interior points coincided after dedup: fall back to the first.
    best.or(Some((lo + 1, seg.line_distance(v.point(lo + 1)))))
}

impl Compressor for HullDouglasPeucker {
    fn name(&self) -> String {
        format!("ndp-hull({}m)", self.epsilon)
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        self.kernel(traj, &mut ws, &mut out);
        out.take()
    }

    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        self.kernel(traj, ws, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::douglas_peucker::DouglasPeucker;

    fn noisy(n: usize, seed: u64) -> Trajectory {
        // Deterministic pseudo-random continuous coordinates: ties have
        // measure zero, so both DP variants must pick identical splits.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        Trajectory::from_triples((0..n).map(|i| {
            let t = i as f64 * 10.0;
            (t, t * 9.0 + 40.0 * next(), 200.0 * (t / 300.0).sin() + 40.0 * next())
        }))
        .unwrap()
    }

    #[test]
    fn matches_textbook_dp_on_continuous_data() {
        for seed in [1, 2, 3, 4, 5] {
            let t = noisy(300, seed);
            for eps in [5.0, 20.0, 60.0] {
                let a = DouglasPeucker::new(eps).compress(&t);
                let b = HullDouglasPeucker::new(eps).compress(&t);
                assert_eq!(a.kept(), b.kept(), "seed={seed} eps={eps}");
            }
        }
    }

    #[test]
    fn postcondition_epsilon_bound() {
        let t = noisy(400, 9);
        let eps = 25.0;
        let r = HullDouglasPeucker::new(eps).compress(&t);
        let f = t.fixes();
        for w in r.kept().windows(2) {
            let seg = traj_geom::Segment::new(f[w[0]].pos, f[w[1]].pos);
            for (i, fix) in f.iter().enumerate().take(w[1]).skip(w[0] + 1) {
                let d = seg.line_distance(fix.pos);
                assert!(d <= eps + 1e-9, "point {i} deviates {d}");
            }
        }
    }

    #[test]
    fn handles_duplicate_positions() {
        // Dwell: many identical positions (hull dedup path).
        let t = Trajectory::from_triples(
            (0..30).map(|i| {
                let x = if (10..20).contains(&i) { 100.0 } else { i as f64 * 10.0 };
                (i as f64, x, 0.0)
            }),
        )
        .unwrap();
        let r = HullDouglasPeucker::new(1.0).compress(&t);
        assert!(r.kept_len() >= 2);
        // Same output as the textbook variant even with duplicates.
        let a = DouglasPeucker::new(1.0).compress(&t);
        // Both satisfy the postcondition; kept sets may differ on ties,
        // but must be equally sized here (collinear duplicates all have
        // zero distance).
        assert_eq!(a.kept_len(), r.kept_len());
    }

    #[test]
    fn collinear_series_collapses() {
        let t = Trajectory::from_triples((0..100).map(|i| (i as f64, i as f64 * 5.0, 0.0)))
            .unwrap();
        let r = HullDouglasPeucker::new(0.5).compress(&t);
        assert_eq!(r.kept(), &[0, 99]);
    }

    #[test]
    fn hull_of_triangle_is_triangle() {
        let mut pts = vec![
            (0usize, Point2::new(0.0, 0.0)),
            (1, Point2::new(10.0, 0.0)),
            (2, Point2::new(5.0, 8.0)),
            (3, Point2::new(5.0, 2.0)), // interior
        ];
        let mut hull = Vec::new();
        convex_hull(&mut pts, &mut hull);
        assert_eq!(hull.len(), 3);
        assert!(!hull.contains(&3), "interior point must be excluded");
    }

    #[test]
    fn compress_into_matches_compress_with_warm_workspace() {
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        for seed in [7, 8] {
            let t = noisy(200, seed);
            let dp = HullDouglasPeucker::new(15.0);
            dp.compress_into(&t, &mut ws, &mut out);
            assert_eq!(out.take(), dp.compress(&t));
        }
    }

    #[test]
    fn degenerate_inputs() {
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 5.0, 5.0)]).unwrap();
        assert_eq!(HullDouglasPeucker::new(1.0).compress(&two).kept_len(), 2);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_nan() {
        let _ = HullDouglasPeucker::new(f64::NAN);
    }
}
