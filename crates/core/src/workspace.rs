//! Reusable scratch memory for the compression kernels.
//!
//! Every kernel in this crate is an explicit-stack loop whose working
//! state — keep masks, split stacks, linked lists, merge heaps, hull
//! buffers — is borrowed from a [`Workspace`] instead of allocated per
//! call. A workspace that has processed one trajectory re-serves its
//! buffers to the next [`crate::Compressor::compress_into`] call at zero
//! allocation cost; the convenience [`crate::Compressor::compress`]
//! methods simply run against a fresh workspace.
//!
//! With the `obs` feature enabled, each warm reuse is counted in the
//! `ws.reuse` / `ws.bytes_saved` metrics (see `crates/obs/README.md`),
//! where `bytes_saved` is the *approximate* number of scratch bytes the
//! call did not have to allocate because capacity was already present.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use traj_geom::Point2;
use traj_model::{TrajColumns, Trajectory};

/// Min-heap candidate for bottom-up merging: removing `idx` (currently
/// flanked by kept `left` and `right`) costs `cost`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MergeCand {
    pub(crate) cost: f64,
    pub(crate) idx: usize,
    pub(crate) left: usize,
    pub(crate) right: usize,
}

impl PartialEq for MergeCand {
    fn eq(&self, o: &Self) -> bool {
        self.cost == o.cost
    }
}
impl Eq for MergeCand {}
impl PartialOrd for MergeCand {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for MergeCand {
    fn cmp(&self, o: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the cheapest first.
        o.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
    }
}

/// Per-interval split statistics memoized by the TD-SP one-pass sweep
/// (see `crate::sweep`): enough to re-derive the blended split decision
/// for any threshold without rescanning the interval.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpStats {
    /// First argmax of the synchronized distance over the interior.
    pub(crate) i_s: usize,
    /// Maximum synchronized distance over the interior.
    pub(crate) s: f64,
    /// First interior index with strictly positive synchronized
    /// distance, if any (the argmax under the `epsilon == 0` transform).
    pub(crate) i_pos: Option<usize>,
    /// First argmax of the derived-speed difference over the interior.
    pub(crate) i_v: usize,
    /// Maximum derived-speed difference over the interior.
    pub(crate) v: f64,
}

/// Reusable scratch for the compression kernels.
///
/// A `Workspace` owns every buffer the kernels need and hands them out
/// through [`crate::Compressor::compress_into`]. Reusing one workspace
/// across a batch of trajectories (or across repeated compressions of a
/// stream) keeps the hot path allocation-free once the buffers are warm:
///
/// ```
/// use traj_compress::{Compressor, CompressionResultBuf, TdTr, Workspace};
/// use traj_model::Trajectory;
///
/// let trajs: Vec<Trajectory> = (0..3)
///     .map(|k| {
///         Trajectory::from_triples((0..60).map(|i| {
///             let t = f64::from(i) * 10.0;
///             (t, t * 3.0, f64::from((i + k) % 5) * 20.0)
///         }))
///         .unwrap()
///     })
///     .collect();
///
/// let tdtr = TdTr::new(30.0);
/// let mut ws = Workspace::new();
/// let mut out = CompressionResultBuf::new();
/// for traj in &trajs {
///     tdtr.compress_into(traj, &mut ws, &mut out);
///     assert_eq!(out.take(), tdtr.compress(traj));
/// }
/// ```
///
/// The workspace is intentionally dumb: it carries no algorithm state
/// between calls, only capacity. Any kernel may use any subset of the
/// buffers; the crate-internal `begin` method clears them all before a
/// run.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Keep mask (top-down) / alive mask (bottom-up) over `0..n`.
    pub(crate) keep: Vec<bool>,
    /// Split stack for the top-down kernels: `(lo, hi, depth)`.
    pub(crate) stack: Vec<(usize, usize, u32)>,
    /// Split stack for the sweep tree walk: `(lo, hi, path_min)`.
    pub(crate) fstack: Vec<(usize, usize, f64)>,
    /// Sweep split-tree records: `(path_min, split_index)`.
    pub(crate) nodes: Vec<(f64, usize)>,
    /// Doubly linked list (bottom-up): previous surviving index.
    pub(crate) prev: Vec<usize>,
    /// Doubly linked list (bottom-up): next surviving index.
    pub(crate) next: Vec<usize>,
    /// Lazy merge-candidate heap (bottom-up).
    pub(crate) merge_heap: BinaryHeap<MergeCand>,
    /// `(original_index, position)` pairs for hull construction.
    pub(crate) pts: Vec<(usize, Point2)>,
    /// Hull vertex output buffer (original indices).
    pub(crate) hull: Vec<usize>,
    /// Memoized per-interval statistics for the TD-SP sweep.
    pub(crate) sp_stats: HashMap<(usize, usize), SpStats>,
    /// Fixed polygon edge normals for the one-pass cone region.
    pub(crate) cone_dirs: Vec<(f64, f64)>,
    /// Per-direction tightest offsets for the one-pass cone region.
    pub(crate) cone_off: Vec<f64>,
    /// Cached structure-of-arrays columns for the bound trajectory.
    /// Identity-keyed, so it survives `begin` (unlike the scratch
    /// buffers above): sweeping one trajectory across many thresholds
    /// de-interleaves it exactly once.
    pub(crate) cols: TrajColumns,
}

impl Workspace {
    /// An empty workspace; kernels size the buffers on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Prepares the workspace for a run over an `n`-point trajectory:
    /// clears every buffer (retaining capacity) and, when the `obs`
    /// feature is on, credits the warm capacity to the `ws.reuse` /
    /// `ws.bytes_saved` metrics.
    pub(crate) fn begin(&mut self, n: usize) {
        #[cfg(feature = "obs")]
        {
            let saved = self.warm_bytes(n);
            if saved > 0 {
                crate::obs::note_workspace_reuse(saved);
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = n;
        self.keep.clear();
        self.stack.clear();
        self.fstack.clear();
        self.nodes.clear();
        self.prev.clear();
        self.next.clear();
        self.merge_heap.clear();
        self.pts.clear();
        self.hull.clear();
        self.sp_stats.clear();
        self.cone_dirs.clear();
        self.cone_off.clear();
        // `cols` is deliberately *not* cleared: it is an identity-keyed
        // cache, invalidated by `bind_columns` when the trajectory
        // changes.
    }

    /// Points `cols` at `traj`, rebuilding only when the trajectory
    /// identity changed, and counts the outcome in the
    /// `layout.cols_built` / `layout.cols_reuse` metrics.
    pub(crate) fn bind_columns(&mut self, traj: &Trajectory) {
        let rebuilt = self.cols.bind(traj);
        #[cfg(feature = "obs")]
        crate::obs::note_columns(rebuilt);
        #[cfg(not(feature = "obs"))]
        let _ = rebuilt;
    }

    /// Takes the cached trajectory columns out of the workspace (leaving
    /// an empty, unbound set) so another consumer — typically an
    /// evaluation workspace scoring the same trajectory — can reuse them
    /// instead of de-interleaving the fixes again.
    pub fn take_columns(&mut self) -> TrajColumns {
        std::mem::take(&mut self.cols)
    }

    /// Seeds the workspace's column cache, e.g. with columns taken from
    /// another workspace that already processed the same trajectory. A
    /// later bind against that trajectory is then served from cache.
    pub fn seed_columns(&mut self, cols: TrajColumns) {
        self.cols = cols;
    }

    /// Approximate scratch bytes an `n`-point run can serve from warm
    /// capacity. Each buffer contributes `min(capacity, n)` elements —
    /// a deliberate *estimate* (heaps and stacks rarely reach `n`
    /// simultaneously) that is cheap, deterministic, and monotone in
    /// both capacity and input size.
    #[cfg(feature = "obs")]
    fn warm_bytes(&self, n: usize) -> u64 {
        fn warm<T>(capacity: usize, n: usize) -> u64 {
            (capacity.min(n) * std::mem::size_of::<T>()) as u64
        }
        warm::<bool>(self.keep.capacity(), n)
            + warm::<(usize, usize, u32)>(self.stack.capacity(), n)
            + warm::<(usize, usize, f64)>(self.fstack.capacity(), n)
            + warm::<(f64, usize)>(self.nodes.capacity(), n)
            + warm::<usize>(self.prev.capacity(), n)
            + warm::<usize>(self.next.capacity(), n)
            + warm::<MergeCand>(self.merge_heap.capacity(), n)
            + warm::<(usize, Point2)>(self.pts.capacity(), n)
            + warm::<usize>(self.hull.capacity(), n)
            + warm::<((usize, usize), SpStats)>(self.sp_stats.capacity(), n)
            + warm::<(f64, f64)>(self.cone_dirs.capacity(), n)
            + warm::<f64>(self.cone_off.capacity(), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_clears_all_buffers() {
        let mut ws = Workspace::new();
        ws.keep.resize(8, true);
        ws.stack.push((0, 7, 1));
        ws.fstack.push((0, 7, f64::INFINITY));
        ws.nodes.push((1.0, 3));
        ws.prev.extend(0..8);
        ws.next.extend(0..8);
        ws.merge_heap.push(MergeCand { cost: 1.0, idx: 1, left: 0, right: 2 });
        ws.pts.push((0, Point2::new(0.0, 0.0)));
        ws.hull.push(0);
        ws.sp_stats.insert(
            (0, 7),
            SpStats { i_s: 1, s: 2.0, i_pos: Some(1), i_v: 1, v: 0.5 },
        );
        ws.cone_dirs.push((1.0, 0.0));
        ws.cone_off.push(3.5);
        ws.begin(8);
        assert!(ws.keep.is_empty());
        assert!(ws.stack.is_empty());
        assert!(ws.fstack.is_empty());
        assert!(ws.nodes.is_empty());
        assert!(ws.prev.is_empty());
        assert!(ws.next.is_empty());
        assert!(ws.merge_heap.is_empty());
        assert!(ws.pts.is_empty());
        assert!(ws.hull.is_empty());
        assert!(ws.sp_stats.is_empty());
        assert!(ws.cone_dirs.is_empty());
        assert!(ws.cone_off.is_empty());
        assert!(ws.keep.capacity() >= 8, "begin retains capacity");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn warm_bytes_grows_with_warm_capacity() {
        let mut ws = Workspace::new();
        assert_eq!(ws.warm_bytes(100), 0, "cold workspace saves nothing");
        ws.keep.resize(100, false);
        ws.prev.extend(0..100);
        let warm = ws.warm_bytes(100);
        assert_eq!(warm, 100 + 100 * 8);
        assert!(ws.warm_bytes(10) < warm, "small runs credit only what they use");
    }

    #[test]
    fn begin_preserves_the_column_cache() {
        let t = Trajectory::from_triples((0..20).map(|i| (i as f64, i as f64, 0.0))).unwrap();
        let mut ws = Workspace::new();
        ws.bind_columns(&t);
        assert_eq!(ws.cols.len(), 20);
        ws.begin(20);
        assert_eq!(ws.cols.len(), 20, "begin must not drop bound columns");
        assert!(!ws.cols.bind(&t), "columns still bound after begin");
    }

    #[test]
    fn take_and_seed_round_trip_the_columns() {
        let t = Trajectory::from_triples((0..10).map(|i| (i as f64, i as f64, 1.0))).unwrap();
        let mut a = Workspace::new();
        a.bind_columns(&t);
        let cols = a.take_columns();
        assert!(a.cols.is_empty(), "take leaves an unbound set behind");
        let mut b = Workspace::new();
        b.seed_columns(cols);
        assert!(!b.cols.bind(&t), "seeded columns serve the bind from cache");
    }

    #[test]
    fn merge_cand_orders_cheapest_first() {
        let mut heap = BinaryHeap::new();
        for (cost, idx) in [(3.0, 1), (1.0, 2), (2.0, 3)] {
            heap.push(MergeCand { cost, idx, left: 0, right: 4 });
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop().map(|c| c.idx)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }
}
