//! Shared elementary-time construction for the error calculus.
//!
//! Both the linear calculus ([`super::synchronized`]) and the spline
//! calculus ([`super::spline`]) integrate piecewise over the *elementary
//! intervals* — the merged, deduplicated vertex instants of the two
//! trajectories restricted to the overlap of their spans. The two
//! modules used to carry near-identical private copies of this merge;
//! this is the single shared routine.
//!
//! The routine is workspace-aware: it fills a caller-supplied buffer
//! (clearing it first) so hot paths can reuse one allocation across
//! calls instead of building a fresh `Vec` per evaluation.

use traj_model::Trajectory;

/// Fills `out` with the elementary instants of the pair `(p, a)` in
/// seconds: the overlap endpoints plus every interior vertex instant of
/// either trajectory, sorted ascending and deduplicated. Leaves `out`
/// empty when the spans do not overlap in an interval of positive
/// length.
pub(crate) fn elementary_times_into(p: &Trajectory, a: &Trajectory, out: &mut Vec<f64>) {
    out.clear();
    let lo = p.start_time().as_secs().max(a.start_time().as_secs());
    let hi = p.end_time().as_secs().min(a.end_time().as_secs());
    if hi <= lo {
        return;
    }
    out.reserve(p.len() + a.len());
    out.push(lo);
    for f in p.fixes().iter().chain(a.fixes()) {
        let s = f.t.as_secs();
        if s > lo && s < hi {
            out.push(s);
        }
    }
    out.push(hi);
    // Timestamps are finite by construction (`Trajectory::new` validates
    // them), so total order == numeric order here.
    out.sort_unstable_by(f64::total_cmp);
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(triples: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::from_triples(triples.iter().copied()).unwrap()
    }

    #[test]
    fn merges_sorts_and_dedups_interior_vertices() {
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 1.0, 0.0), (20.0, 2.0, 0.0)]);
        let a = t(&[
            (0.0, 0.0, 0.0),
            (5.0, 1.0, 1.0),
            (10.0, 1.0, 0.0),
            (20.0, 2.0, 0.0),
        ]);
        let mut ts = Vec::new();
        elementary_times_into(&p, &a, &mut ts);
        assert_eq!(ts, vec![0.0, 5.0, 10.0, 20.0]);
    }

    #[test]
    fn restricts_to_overlap() {
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 1.0, 0.0), (20.0, 2.0, 0.0)]);
        let a = t(&[(5.0, 0.0, 0.0), (15.0, 1.0, 0.0)]);
        let mut ts = Vec::new();
        elementary_times_into(&p, &a, &mut ts);
        assert_eq!(ts, vec![5.0, 10.0, 15.0]);
    }

    #[test]
    fn disjoint_spans_leave_buffer_empty() {
        let p = t(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]);
        let a = t(&[(5.0, 0.0, 0.0), (6.0, 1.0, 0.0)]);
        let mut ts = vec![99.0];
        elementary_times_into(&p, &a, &mut ts);
        assert!(ts.is_empty(), "stale contents must be cleared");
    }

    #[test]
    fn buffer_is_reusable_across_calls() {
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 1.0, 0.0)]);
        let a = t(&[(0.0, 0.0, 0.0), (4.0, 1.0, 1.0), (10.0, 1.0, 0.0)]);
        let mut ts = Vec::new();
        elementary_times_into(&p, &a, &mut ts);
        let first = ts.clone();
        elementary_times_into(&p, &a, &mut ts);
        assert_eq!(ts, first);
    }
}
