//! The one-pass evaluation engine: every error notion from a single
//! linear merge, with cross-threshold memoization.
//!
//! [`super::evaluate`] is the *reference* implementation: it materializes
//! the approximation (`CompressionResult::apply`), then computes each
//! notion independently — rebuilding and re-sorting the elementary-time
//! list per notion and binary-searching positions per instant. Correct,
//! but the experiment harness calls it for every (algorithm × threshold
//! × trajectory) cell of the paper's figures, where it dominates the run
//! time now that compression itself answers a whole threshold grid in
//! one pass (`DESIGN.md` §2b).
//!
//! This module exploits the structural fact the reference path ignores:
//! a [`CompressionResult`] keeps a **subsequence** of the original's
//! fixes. Consequences, for original `p` and approximation
//! `a = p.select(kept)`:
//!
//! * the merged elementary instants of `(p, a)` are exactly `p`'s own
//!   vertex instants — no merge, no sort, no dedup;
//! * `a`'s synchronized position at an original instant `t` inside the
//!   kept anchor pair `(lo, hi)` is `Fix::interpolate(p[lo], p[hi], t)`
//!   — no binary search, no materialized trajectory;
//! * therefore *all* notions — the `α` integral (eq. 3), the max
//!   synchronous error, the SED mean/max/quantile samples and the
//!   perpendicular errors — fall out of one O(n + m) cursor merge of the
//!   original fixes against the kept-anchor segments.
//!
//! [`ErrorEval`] is that merge; scratch lives in a reusable
//! [`EvalWorkspace`] so a warm evaluation allocates nothing.
//!
//! **Cross-threshold memoization.** Nested top-down results share
//! anchor segments: tightening the threshold only *splits* segments, so
//! most `(lo, hi)` pairs recur across the paper's fifteen thresholds.
//! The workspace caches, per anchor segment, the per-interval
//! contribution terms (the α integrand, the SED sample, the
//! perpendicular distance — the same pattern as the TD-SP sweep memo of
//! `crate::workspace::SpStats`); evaluating another threshold then only
//! re-sums cached terms. Terms — not partial sums — are cached so the
//! flat, in-order summation of the reference path is reproduced exactly:
//! every field of the returned [`Evaluation`] equals
//! [`super::evaluate`]'s, bit for bit (pinned by the proptests in
//! `tests/eval_engine.rs`).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::error::synchronized::mean_linear_displacement;
use crate::error::Evaluation;
use crate::result::CompressionResult;
use traj_geom::numeric::approx_zero;
use traj_geom::Vec2;
use traj_model::{Fix, TrajColumns, Trajectory};

/// Multiply-rotate hasher for the segment cache (the FxHash recipe).
/// `(lo, hi)` keys are a pair of small indices; SipHash's DoS hardening
/// buys nothing here and its per-lookup cost is visible in threshold
/// sweeps, where every anchor segment of every result is looked up.
#[derive(Debug, Default)]
struct SegHasher(u64);

impl Hasher for SegHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_usize(b as usize);
        }
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.0 = (self.0.rotate_left(5) ^ v as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.write_usize(v as usize);
    }
}

/// Cache entry for one anchor segment: where its per-interval terms
/// live, plus the segment-level maxima.
///
/// The maxima are cached *reduced* — unlike the sums, a maximum is
/// associative and commutative over the non-negative finite distances
/// involved, so folding cached per-segment maxima yields bit-identical
/// results to the reference path's flat per-term max while costing the
/// warm re-evaluation two `max` operations per segment instead of two
/// per term.
#[derive(Debug, Clone, Copy)]
struct SegEntry {
    /// Offset of the segment's `hi - lo` terms in `EvalWorkspace::terms`.
    off: usize,
    /// Max synchronous distance over the segment's end vertices
    /// (seeded at `0.0`, as the reference fold's accumulator is).
    d_max: f64,
    /// Max perpendicular distance over the segment's removed vertices
    /// (seeded at `0.0`).
    perp_max: f64,
}

/// Contributions of one elementary interval `[i, i+1]` inside a kept
/// anchor segment, cached per `(lo, hi)` anchor pair.
#[derive(Debug, Clone, Copy)]
struct SegTerm {
    /// `Δt · ∫₀¹|δ|` — this interval's term of the α numerator (eq. 3).
    alpha: f64,
    /// Synchronous distance at the interval's end vertex — the SED
    /// sample at that original instant, and the candidate for the max
    /// synchronous error (|δ| is convex per interval, so vertex maxima
    /// are exact).
    d_end: f64,
    /// Perpendicular distance of the end vertex to the anchor chord;
    /// 0 when the end vertex is the anchor end itself (kept points are
    /// never "removed", so the value is unused there).
    perp: f64,
}

/// Reusable scratch for the one-pass evaluation engine — the evaluation
/// twin of [`crate::Workspace`].
///
/// Holds the identity-keyed trajectory columns (the structure-of-arrays
/// the cursor merge reads), the per-trajectory segment-contribution
/// cache and the SED sample buffer. Reuse one workspace across a sweep
/// (or a whole dataset) to keep evaluation allocation-free once warm;
/// the cache automatically resets when a different trajectory is
/// evaluated. A compression [`crate::Workspace`] that already columnized
/// the same trajectory can hand its columns over through
/// [`seed_columns`](EvalWorkspace::seed_columns), so a compress→evaluate
/// pipeline de-interleaves each trajectory exactly once.
///
/// With the `obs` feature enabled, warm rebinds are counted in the
/// `eval.ws_reuse` metric, evaluated cells in `eval.cells`, anchor
/// segments served from the cache in `eval.cache_hits`, and column
/// binds in `layout.cols_built` / `layout.cols_reuse` (see
/// `crates/obs/README.md`).
#[derive(Debug, Default)]
pub struct EvalWorkspace {
    /// Anchor segment `(lo, hi)` → term offset and cached maxima.
    seg_at: HashMap<(usize, usize), SegEntry, BuildHasherDefault<SegHasher>>,
    /// Arena of cached per-interval terms, in discovery order.
    terms: Vec<SegTerm>,
    /// SED sample scratch for the quantile queries.
    seds: Vec<f64>,
    /// Columnar copy of the bound trajectory. Its identity key doubles
    /// as the cache invalidation signal for `seg_at`/`terms`.
    cols: TrajColumns,
}

impl EvalWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        EvalWorkspace::default()
    }

    /// Points the cache at `traj`, clearing it if it belonged to a
    /// different trajectory (capacity is retained either way).
    fn bind(&mut self, traj: &Trajectory) {
        let rebuilt = self.cols.bind(traj);
        #[cfg(feature = "obs")]
        crate::obs::note_columns(rebuilt);
        if !rebuilt {
            return;
        }
        #[cfg(feature = "obs")]
        if self.terms.capacity() > 0 {
            traj_obs::registry().counter("eval", "ws_reuse").inc();
        }
        self.seg_at.clear();
        self.terms.clear();
    }

    /// Installs columns another workspace already filled (see
    /// [`crate::Workspace::take_columns`]). If they come from a
    /// different trajectory than the current binding, the segment cache
    /// is invalidated; if they are the same trajectory's, both the
    /// columns and the cache survive.
    pub fn seed_columns(&mut self, cols: TrajColumns) {
        if !cols.same_source(&self.cols) {
            self.seg_at.clear();
            self.terms.clear();
            self.cols = cols;
        }
    }
}

/// The one-pass error evaluator for one original trajectory.
///
/// Construct once per trajectory, then [`evaluate`](ErrorEval::evaluate)
/// any number of [`CompressionResult`]s against it — each evaluation is
/// a single forward merge of the original fixes with the result's kept
/// anchors, and anchor segments shared between results (ubiquitous
/// across a threshold sweep) are computed once.
///
/// Every field of the returned [`Evaluation`] is exactly equal to the
/// reference [`super::evaluate`] — same operands, same summation order.
///
/// ```
/// use traj_compress::{Compressor, ErrorEval, EvalWorkspace, TdTr, evaluate};
/// use traj_model::Trajectory;
///
/// let trip = Trajectory::from_triples(
///     (0..50).map(|i| (f64::from(i) * 10.0, f64::from(i * i), 0.0)),
/// )
/// .unwrap();
/// let result = TdTr::new(25.0).compress(&trip);
///
/// let mut ws = EvalWorkspace::new();
/// let fast = ErrorEval::new(&trip, &mut ws).evaluate(&result);
/// assert_eq!(fast, evaluate(&trip, &result));
/// ```
#[derive(Debug)]
pub struct ErrorEval<'a> {
    fixes: &'a [Fix],
    /// Observation span in seconds — the α denominator.
    span_s: f64,
    ws: &'a mut EvalWorkspace,
    #[cfg(feature = "obs")]
    cells: u64,
    #[cfg(feature = "obs")]
    cache_hits: u64,
}

impl<'a> ErrorEval<'a> {
    /// Binds the engine (and the workspace cache) to `traj`.
    ///
    /// # Panics
    /// Panics if `traj` has fewer than two fixes — such a trajectory has
    /// no observation interval to average over (the reference path
    /// rejects it for the same reason).
    pub fn new(traj: &'a Trajectory, ws: &'a mut EvalWorkspace) -> Self {
        assert!(traj.len() >= 2, "evaluation requires at least two fixes");
        ws.bind(traj);
        let fixes = traj.fixes();
        let span_s = fixes[fixes.len() - 1].t.as_secs() - fixes[0].t.as_secs();
        ErrorEval {
            fixes,
            span_s,
            ws,
            #[cfg(feature = "obs")]
            cells: 0,
            #[cfg(feature = "obs")]
            cache_hits: 0,
        }
    }

    /// Evaluates one compression result under every error notion — the
    /// one-pass equivalent of [`super::evaluate`].
    ///
    /// # Panics
    /// Panics if `result` does not belong to the bound trajectory
    /// (length mismatch).
    pub fn evaluate(&mut self, result: &CompressionResult) -> Evaluation {
        assert_eq!(
            self.fixes.len(),
            result.original_len(),
            "result/trajectory mismatch"
        );
        #[cfg(feature = "obs")]
        {
            self.cells += 1;
        }
        let n = self.fixes.len();
        // Flat accumulators, updated in original-fix order across anchor
        // segments — the exact summation order of the reference path.
        let mut alpha_num = 0.0;
        let mut sed_sum = 0.0;
        let mut d_max = 0.0f64;
        let mut perp_sum = 0.0;
        let mut perp_max = 0.0f64;
        for w in result.kept().windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let e = self.seg_terms(lo, hi);
            let seg = &self.ws.terms[e.off..e.off + (hi - lo)];
            // Three independent ordered add chains — the sums must keep
            // the reference path's flat per-term order bit-for-bit, so
            // they stay serial. The last term's `perp` is stored as
            // exactly `0.0` (its end vertex is kept), and the
            // accumulator is `+0.0` or a positive/`inf` sum of
            // non-negative distances, so adding it is a bitwise no-op —
            // no per-term branch or split needed.
            for term in seg {
                alpha_num += term.alpha;
                sed_sum += term.d_end;
                perp_sum += term.perp;
            }
            // Maxima fold from the per-segment cache; `max` over the
            // non-negative distances is associative, so this matches the
            // reference path's flat per-term max exactly.
            d_max = d_max.max(e.d_max);
            perp_max = perp_max.max(e.perp_max);
        }
        let removed = n - result.kept_len();
        Evaluation {
            compression_pct: result.compression_pct(),
            avg_sync_err_m: alpha_num / self.span_s,
            // The elementary instants are the sample instants, so the
            // continuous max (attained at an interval endpoint — |δ| is
            // convex per interval) coincides with the max SED sample.
            max_sync_err_m: d_max,
            mean_sed_m: sed_sum / n as f64,
            max_sed_m: d_max,
            mean_perp_m: if removed == 0 {
                0.0
            } else {
                perp_sum / removed as f64
            },
            max_perp_m: perp_max,
        }
    }

    /// SED quantiles of `result` at the original sample instants —
    /// nearest-rank, one value per entry of `quantiles`, semantics
    /// identical to [`super::sed_quantiles`] on the materialized
    /// approximation. The samples come from the same cached terms as
    /// [`evaluate`](ErrorEval::evaluate); only the sort is extra.
    ///
    /// # Panics
    /// Panics if any quantile is outside `[0, 1]`, or on a
    /// result/trajectory length mismatch.
    pub fn sed_quantiles(&mut self, result: &CompressionResult, quantiles: &[f64]) -> Vec<f64> {
        assert!(
            quantiles.iter().all(|q| (0.0..=1.0).contains(q)),
            "quantiles must lie in [0, 1]"
        );
        assert_eq!(
            self.fixes.len(),
            result.original_len(),
            "result/trajectory mismatch"
        );
        let mut seds = std::mem::take(&mut self.ws.seds);
        seds.clear();
        // The first vertex is always kept: its SED sample is exactly 0.
        seds.push(0.0);
        for w in result.kept().windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let e = self.seg_terms(lo, hi);
            seds.extend(
                self.ws.terms[e.off..e.off + (hi - lo)]
                    .iter()
                    .map(|t| t.d_end),
            );
        }
        seds.sort_unstable_by(f64::total_cmp);
        let n = seds.len();
        let out = quantiles
            .iter()
            .map(|&q| {
                // Nearest-rank quantile, as in the reference path.
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                seds[rank - 1]
            })
            .collect();
        self.ws.seds = seds;
        out
    }

    /// The terms of anchor segment `(lo, hi)`: cached offset if seen
    /// before, else one linear walk over the covered elementary
    /// intervals, reading the workspace's columnar copy of the
    /// trajectory with all anchor-invariant subexpressions (time span,
    /// chord direction and length, degeneracy flags) hoisted out of the
    /// loop. Every per-point operation keeps the exact operand order of
    /// the former fix-based walk (`Fix::interpolate`, `Point2::distance`,
    /// `Segment::line_distance`), so each term is bit-identical.
    fn seg_terms(&mut self, lo: usize, hi: usize) -> SegEntry {
        if let Some(&e) = self.ws.seg_at.get(&(lo, hi)) {
            #[cfg(feature = "obs")]
            {
                self.cache_hits += 1;
            }
            return e;
        }
        // Field-disjoint borrows: the view reads `ws.cols` while the
        // loop appends to `ws.terms`.
        let ws = &mut *self.ws;
        let v = ws.cols.view();
        let (ts, xs, ys) = (v.ts, v.xs, v.ys);
        let (ta, ax, ay) = (ts[lo], xs[lo], ys[lo]);
        let (tb, bx, by) = (ts[hi], xs[hi], ys[hi]);
        // `Fix::interpolate`'s `ratio_within` denominator and its
        // degenerate (zero-span → anchor start) branch.
        let span = tb - ta;
        let span_degenerate = approx_zero(span, 0.0);
        // `Segment::line_distance`'s chord direction/length and its
        // degenerate (coincident endpoints → point distance) branch.
        let (dx, dy) = (bx - ax, by - ay);
        let len = (dx * dx + dy * dy).sqrt();
        let len_degenerate = approx_zero(len, 0.0);
        let off = ws.terms.len();
        ws.terms.reserve(hi - lo);
        // Displacement δ at the anchor start: the approximation passes
        // through the kept fix, so δ is exactly zero — bit-identical to
        // the reference path's `p - p` subtraction of finite coordinates.
        let mut d0 = Vec2::ZERO;
        // Segment-level maxima, reduced once at build time (see
        // `SegEntry`). Seeded at `0.0` like the reference accumulators;
        // the distances are `sqrt` results, so never negative or `-0.0`.
        let mut seg_d_max = 0.0f64;
        let mut seg_perp_max = 0.0f64;
        for i in lo..hi {
            let (t1, px, py) = (ts[i + 1], xs[i + 1], ys[i + 1]);
            // The approximation's synchronized position at p1's instant:
            // the kept vertex itself at the anchor end, else the linear
            // interpolation along the anchor — the same operands
            // `position_at` would reach through its binary search.
            let (a1x, a1y) = if i + 1 == hi {
                (bx, by)
            } else if span_degenerate {
                (ax, ay)
            } else {
                let f = (t1 - ta) / span;
                (ax + dx * f, ay + dy * f)
            };
            let d1 = Vec2::new(px - a1x, py - a1y);
            let dt = t1 - ts[i];
            let (ex, ey) = (a1x - px, a1y - py);
            let d_end = (ex * ex + ey * ey).sqrt();
            if d_end > seg_d_max {
                seg_d_max = d_end;
            }
            let perp = if i + 1 == hi {
                0.0
            } else if len_degenerate {
                let (gx, gy) = (ax - px, ay - py);
                (gx * gx + gy * gy).sqrt()
            } else {
                (dx * (py - ay) - dy * (px - ax)).abs() / len
            };
            if perp > seg_perp_max {
                seg_perp_max = perp;
            }
            ws.terms.push(SegTerm {
                alpha: dt * mean_linear_displacement(d0, d1),
                d_end,
                perp,
            });
            d0 = d1;
        }
        let e = SegEntry {
            off,
            d_max: seg_d_max,
            perp_max: seg_perp_max,
        };
        ws.seg_at.insert((lo, hi), e);
        e
    }
}

#[cfg(feature = "obs")]
impl Drop for ErrorEval<'_> {
    /// Flushes the per-engine counters into the registry exactly once —
    /// the same accumulate-then-flush discipline as `crate::obs::AlgoRun`.
    fn drop(&mut self) {
        if self.cells > 0 {
            let r = traj_obs::registry();
            r.counter("eval", "cells").add(self.cells);
            r.counter("eval", "cache_hits").add(self.cache_hits);
        }
    }
}

/// Evaluates every result of a threshold sweep against `original` in one
/// engine pass: anchor segments shared between thresholds (the common
/// case for nested top-down results) are computed once and re-summed per
/// threshold. Each returned [`Evaluation`] is exactly equal — bit for
/// bit — to [`super::evaluate`] on the same cell.
///
/// With the `obs` feature and an active [`traj_obs::trace`] session,
/// each evaluated result emits `eval.cache_hits` / `eval.cache_misses`
/// instant events (anchor segments served from vs. added to the
/// workspace cache), so threshold-sweep memoization is visible on the
/// timeline.
///
/// # Panics
/// Panics if `original` has fewer than two fixes or any result does not
/// belong to it.
pub fn evaluate_sweep(
    original: &Trajectory,
    results: &[CompressionResult],
    ws: &mut EvalWorkspace,
) -> Vec<Evaluation> {
    let mut ev = ErrorEval::new(original, ws);
    results
        .iter()
        .map(|r| {
            #[cfg(feature = "obs")]
            let hits_before = ev.cache_hits;
            let e = ev.evaluate(r);
            #[cfg(feature = "obs")]
            {
                let hits = ev.cache_hits - hits_before;
                let segments = (r.kept().len() as u64).saturating_sub(1);
                traj_obs::trace_instant!("eval.cache_hits", hits);
                traj_obs::trace_instant!("eval.cache_misses", segments - hits);
            }
            e
        })
        .collect()
}

/// One-pass, workspace-borrowing form of [`super::evaluate`]: same
/// result (exactly), no approximation materialized, scratch served from
/// `ws`.
///
/// # Panics
/// Panics if `original` has fewer than two fixes or `result` does not
/// belong to it.
pub fn evaluate_with(
    original: &Trajectory,
    result: &CompressionResult,
    ws: &mut EvalWorkspace,
) -> Evaluation {
    ErrorEval::new(original, ws).evaluate(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{evaluate, sed_quantiles};
    use crate::result::Compressor;

    fn t(triples: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::from_triples(triples.iter().copied()).unwrap()
    }

    fn zigzag(n: usize) -> Trajectory {
        Trajectory::from_triples((0..n).map(|i| {
            let s = i as f64 * 10.0;
            (s, s * 7.0, ((i * 13) % 9) as f64 * 21.0)
        }))
        .unwrap()
    }

    #[test]
    fn identity_result_has_zero_errors() {
        let p = zigzag(12);
        let mut ws = EvalWorkspace::new();
        let e = evaluate_with(&p, &CompressionResult::identity(12), &mut ws);
        assert_eq!(e.compression_pct, 0.0);
        assert_eq!(e.avg_sync_err_m, 0.0);
        assert_eq!(e.max_sync_err_m, 0.0);
        assert_eq!(e.mean_sed_m, 0.0);
        assert_eq!(e.mean_perp_m, 0.0);
        assert_eq!(e.max_perp_m, 0.0);
    }

    #[test]
    fn matches_reference_on_detour() {
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 100.0, 0.0), (20.0, 100.0, 100.0)]);
        let r = CompressionResult::new(vec![0, 2], 3);
        let mut ws = EvalWorkspace::new();
        assert_eq!(evaluate_with(&p, &r, &mut ws), evaluate(&p, &r));
    }

    #[test]
    fn matches_reference_across_compressors() {
        let p = zigzag(60);
        let mut ws = EvalWorkspace::new();
        for eps in [5.0, 20.0, 60.0, 150.0] {
            for r in [
                crate::douglas_peucker::TdTr::new(eps).compress(&p),
                crate::douglas_peucker::DouglasPeucker::new(eps).compress(&p),
                crate::opening_window::OpeningWindow::opw_tr(eps).compress(&p),
            ] {
                assert_eq!(
                    evaluate_with(&p, &r, &mut ws),
                    evaluate(&p, &r),
                    "eps={eps}"
                );
            }
        }
    }

    #[test]
    fn sweep_matches_per_cell_and_caches_shared_segments() {
        let p = zigzag(80);
        let td = crate::douglas_peucker::TopDown::time_ratio(0.0);
        let grid = [10.0, 20.0, 40.0, 80.0, 160.0];
        let mut cws = crate::workspace::Workspace::new();
        let results = td.sweep_with(&p, &grid, &mut cws);
        let mut ws = EvalWorkspace::new();
        let evals = evaluate_sweep(&p, &results, &mut ws);
        assert_eq!(evals.len(), grid.len());
        for (e, r) in evals.iter().zip(&results) {
            assert_eq!(*e, evaluate(&p, r));
        }
        // Nested results cover each elementary interval once per
        // *distinct* segment; far fewer terms than intervals × thresholds.
        assert!(
            ws.terms.len() < (p.len() - 1) * grid.len(),
            "cache failed to share segments: {} terms",
            ws.terms.len()
        );
    }

    #[test]
    fn workspace_rebinds_between_trajectories() {
        let p1 = zigzag(20);
        let p2 = zigzag(25);
        let mut ws = EvalWorkspace::new();
        let r1 = CompressionResult::new(vec![0, 19], 20);
        let r2 = CompressionResult::new(vec![0, 24], 25);
        let a = evaluate_with(&p1, &r1, &mut ws);
        let b = evaluate_with(&p2, &r2, &mut ws);
        assert_eq!(a, evaluate(&p1, &r1));
        assert_eq!(b, evaluate(&p2, &r2));
        // Re-evaluating the first trajectory after rebinding stays right.
        assert_eq!(evaluate_with(&p1, &r1, &mut ws), a);
    }

    #[test]
    fn quantiles_match_reference_path() {
        let p = zigzag(40);
        let r = crate::douglas_peucker::TdTr::new(30.0).compress(&p);
        let approx = r.apply(&p);
        let qs = [0.0, 0.25, 0.5, 0.9, 0.95, 1.0];
        let mut ws = EvalWorkspace::new();
        let fast = ErrorEval::new(&p, &mut ws).sed_quantiles(&r, &qs);
        assert_eq!(fast, sed_quantiles(&p, &approx, &qs));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_result_panics() {
        let p = zigzag(10);
        let r = CompressionResult::new(vec![0, 4], 5);
        let mut ws = EvalWorkspace::new();
        let _ = evaluate_with(&p, &r, &mut ws);
    }

    #[test]
    #[should_panic(expected = "two fixes")]
    fn single_fix_trajectory_rejected() {
        let p = Trajectory::from_triples([(0.0, 1.0, 2.0)]).unwrap();
        let mut ws = EvalWorkspace::new();
        let _ = ErrorEval::new(&p, &mut ws);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn counters_track_cells_and_cache_hits() {
        let reg = traj_obs::registry();
        let cells = reg.counter("eval", "cells");
        let hits = reg.counter("eval", "cache_hits");
        let c0 = cells.get();
        let h0 = hits.get();
        let p = zigzag(50);
        let td = crate::douglas_peucker::TopDown::time_ratio(0.0);
        let grid = [20.0, 20.0, 20.0]; // identical thresholds: maximal sharing
        let mut cws = crate::workspace::Workspace::new();
        let results = td.sweep_with(&p, &grid, &mut cws);
        let mut ws = EvalWorkspace::new();
        let _ = evaluate_sweep(&p, &results, &mut ws);
        assert!(cells.get() >= c0 + 3, "three cells evaluated");
        assert!(
            hits.get() > h0,
            "repeat thresholds must hit the segment cache"
        );
    }
}
