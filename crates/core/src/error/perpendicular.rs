//! Classic perpendicular (line-generalization) error notions (paper
//! §4.1, Fig. 5a).
//!
//! These treat the trajectory as a plain 2-D line: the error of a removed
//! point is its perpendicular distance to the approximation segment that
//! replaced it. The paper keeps these notions for comparison and to
//! show why they are the *wrong* yardstick for moving objects — they are
//! blind to time. The area-based variant corresponds to the limit of
//! Fig. 5a's "progressively finer sampling rates" construction.

use crate::result::CompressionResult;
use traj_geom::numeric::integrate_adaptive;
use traj_geom::Segment;
use traj_model::interp::position_at;
use traj_model::{Timestamp, Trajectory};

/// For every *removed* original point, the perpendicular distance to the
/// line through the kept pair that covers it; returns the mean (0 when
/// nothing was removed).
pub fn mean_perpendicular_error(original: &Trajectory, result: &CompressionResult) -> f64 {
    let (sum, n) = fold_removed(original, result);
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Maximum perpendicular distance over the removed points (0 when nothing
/// was removed).
pub fn max_perpendicular_error(original: &Trajectory, result: &CompressionResult) -> f64 {
    let mut max = 0.0f64;
    for_each_removed(original, result, |d| max = max.max(d));
    max
}

fn fold_removed(original: &Trajectory, result: &CompressionResult) -> (f64, usize) {
    let mut sum = 0.0;
    let mut n = 0usize;
    for_each_removed(original, result, |d| {
        sum += d;
        n += 1;
    });
    (sum, n)
}

fn for_each_removed(
    original: &Trajectory,
    result: &CompressionResult,
    mut f: impl FnMut(f64),
) {
    assert_eq!(original.len(), result.original_len(), "result/trajectory mismatch");
    let fixes = original.fixes();
    for w in result.kept().windows(2) {
        let seg = Segment::new(fixes[w[0]].pos, fixes[w[1]].pos);
        for fx in &fixes[w[0] + 1..w[1]] {
            f(seg.line_distance(fx.pos));
        }
    }
}

/// Time-weighted area error (paper Fig. 5a in the fine-sampling limit):
/// the time-average perpendicular distance from the original moving point
/// to the covering approximation line,
/// `1/T ∫ perp(loc(p,t), seg(t)) dt`, in metres.
///
/// Evaluated by adaptive quadrature per original segment (the integrand
/// is piecewise smooth); `tol` is the per-segment absolute tolerance of
/// the integral in metre·seconds (1e-6 is plenty for metre-scale data).
pub fn area_perpendicular_error(
    original: &Trajectory,
    result: &CompressionResult,
    tol: f64,
) -> f64 {
    assert_eq!(original.len(), result.original_len(), "result/trajectory mismatch");
    let fixes = original.fixes();
    let mut total = 0.0;
    for w in result.kept().windows(2) {
        let seg = Segment::new(fixes[w[0]].pos, fixes[w[1]].pos);
        let (t0, t1) = (fixes[w[0]].t.as_secs(), fixes[w[1]].t.as_secs());
        let q = integrate_adaptive(
            |t| {
                // Quadrature nodes at interval endpoints can fall a ulp
                // outside the span; such slivers contribute zero.
                match position_at(original, Timestamp::from_secs(t)) {
                    Some(p) => seg.line_distance(p),
                    None => 0.0,
                }
            },
            t0,
            t1,
            tol,
            40,
        );
        total += q.value;
    }
    total / original.duration().as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geom::numeric::approx_eq;

    fn detour() -> Trajectory {
        // Right-angle detour: (0,0) → (100,0) → (100,100), approximated
        // by the straight hypotenuse.
        Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 100.0, 0.0),
            (20.0, 100.0, 100.0),
        ])
        .unwrap()
    }

    #[test]
    fn removed_corner_distance() {
        let t = detour();
        let r = CompressionResult::new(vec![0, 2], 3);
        let expect = 5000.0f64.sqrt();
        assert!(approx_eq(mean_perpendicular_error(&t, &r), expect, 1e-9, 1e-12));
        assert!(approx_eq(max_perpendicular_error(&t, &r), expect, 1e-9, 1e-12));
    }

    #[test]
    fn identity_has_zero_error() {
        let t = detour();
        let r = CompressionResult::identity(3);
        assert_eq!(mean_perpendicular_error(&t, &r), 0.0);
        assert_eq!(max_perpendicular_error(&t, &r), 0.0);
        assert!(area_perpendicular_error(&t, &r, 1e-8) < 1e-9);
    }

    #[test]
    fn area_error_of_triangle_detour() {
        // The perpendicular distance from loc(p,t) to the hypotenuse line
        // grows linearly 0 → √5000 over the first leg and shrinks back
        // over the second; with equal leg durations the time average is
        // √5000 / 2.
        let t = detour();
        let r = CompressionResult::new(vec![0, 2], 3);
        let got = area_perpendicular_error(&t, &r, 1e-9);
        let expect = 5000.0f64.sqrt() / 2.0;
        assert!(approx_eq(got, expect, 1e-6, 1e-9), "got {got}, expect {expect}");
    }

    #[test]
    fn area_error_weights_by_time_not_space() {
        // Same geometry as `detour`, but the object lingers on the first
        // leg 9× longer: the time average shifts accordingly (the classic
        // area notion would not change — this is the paper's §3.1 point
        // made quantitative).
        let fast = detour();
        let slow = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (90.0, 100.0, 0.0),
            (100.0, 100.0, 100.0),
        ])
        .unwrap();
        let r = CompressionResult::new(vec![0, 2], 3);
        let e_fast = area_perpendicular_error(&fast, &r, 1e-9);
        let e_slow = area_perpendicular_error(&slow, &r, 1e-9);
        assert!(
            approx_eq(e_fast, e_slow, 1e-6, 1e-9),
            "perpendicular area error is time-weighted only through \
             segment durations; here both legs hit the same chord profile: \
             fast={e_fast} slow={e_slow}"
        );
    }

    #[test]
    fn mean_le_max_invariant() {
        let t = Trajectory::from_triples((0..25).map(|i| {
            (i as f64, i as f64 * 10.0, ((i * 7) % 5) as f64 * 8.0)
        }))
        .unwrap();
        let r = crate::douglas_peucker::DouglasPeucker::new(10.0);
        use crate::result::Compressor;
        let res = r.compress(&t);
        assert!(
            mean_perpendicular_error(&t, &res) <= max_perpendicular_error(&t, &res) + 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_result_panics() {
        let t = detour();
        let r = CompressionResult::new(vec![0, 4], 5);
        let _ = mean_perpendicular_error(&t, &r);
    }
}
