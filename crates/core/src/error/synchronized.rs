//! The average synchronous error `α(p, a)` (paper §4.2), in closed form.
//!
//! Given the original trajectory `p` and an approximation `a`, both
//! piecewise linear in space-time, the measure is the time-average of
//! `dist(loc(p, t), loc(a, t))` over the (shared) observation interval:
//!
//! ```text
//! α(p, a) = Σᵢ (tᵢ₊₁ − tᵢ) · α(p[i : i+1], a)  /  Σᵢ (tᵢ₊₁ − tᵢ)      (3)
//! α(p[i : i+1], a) = 1/(tᵢ₊₁ − tᵢ) ∫ dist(loc(p,t), loc(a,t)) dt      (4)
//! ```
//!
//! On any interval where **both** trajectories are linear, the
//! displacement `δ(t) = loc(p,t) − loc(a,t)` is itself linear, so the
//! integrand is `√(c₁t² + c₂t + c₃)` — the paper's equation (5). Writing
//! `δ` at the interval ends as `δ₀, δ₁` and `w = δ₁ − δ₀`, substitution
//! reduces the integral to `√A ∫ √(u² + k²) du` with `A = |w|²`,
//! `u = s + δ₀·w/A` and `k = |δ₀ × w| / A`, whose antiderivative is
//! `(u√(u²+k²) + k²·asinh(u/k))/2`. The paper's case analysis falls out
//! of the two degeneracies:
//!
//! * `A = 0` (paper: `c₁ = 0`) — the approximation is a pure translation
//!   of the segment; the distance is the constant `|δ₀|`;
//! * `k = 0` (paper: `c₂² − 4c₁c₃ = 0`, i.e. `δ₀ ∥ δ₁`, covering the
//!   shared-start, shared-end and δ-ratio subcases) — the distance is
//!   `√A·|u|`, integrated piecewise;
//! * otherwise (paper: determinant < 0) — the general `asinh` form.
//!
//! Compression never invents data points, so the approximation's vertices
//! are a subset of the original's and the elementary intervals are simply
//! `p`'s segments; the implementation nevertheless merges both vertex
//! sets, so the measure is valid for *any* pair of trajectories
//! overlapping in time (e.g. comparing two different approximations, or
//! the paper's Fig. 5 construction).

use traj_geom::numeric::integrate_adaptive;
use traj_geom::Vec2;
use traj_model::interp::{position_at, synchronous_distance};
use traj_model::{Timestamp, Trajectory};

/// `∫₀¹ |δ₀ + s·w| ds` — the exact mean length of a linearly varying
/// displacement, via the paper's case analysis (documented above).
///
/// Crate-visible: the one-pass evaluation engine ([`super::eval`])
/// reuses this kernel per elementary interval.
pub(crate) fn mean_linear_displacement(d0: Vec2, d1: Vec2) -> f64 {
    let w = d1 - d0;
    let a = w.norm_sq();
    // Paper case c₁ = 0: the displacement is constant (translation).
    // The relative threshold guards against catastrophic cancellation
    // when the two displacements are nearly identical.
    if a <= 1e-24 * (d0.norm_sq() + d1.norm_sq() + 1.0) {
        #[cfg(feature = "obs")]
        traj_obs::counter!("error", "alpha_case_translation").inc();
        return 0.5 * (d0.norm() + d1.norm());
    }
    let u0 = d0.dot(w) / a;
    let u1 = u0 + 1.0;
    let k = d0.cross(w).abs() / a;
    // Which branch of the paper's case analysis fires, counted once per
    // elementary interval (the antiderivative below is evaluated twice).
    #[cfg(feature = "obs")]
    if k > 0.0 {
        traj_obs::counter!("error", "alpha_case_general").inc();
    } else {
        traj_obs::counter!("error", "alpha_case_parallel").inc();
    }
    let sqrt_a = a.sqrt();

    // Antiderivative of √(u² + k²).
    fn antideriv(u: f64, k: f64) -> f64 {
        if k > 0.0 {
            let r = (u * u + k * k).sqrt();
            0.5 * (u * r + k * k * (u / k).asinh())
        } else {
            // Paper case det = 0 (δ₀ ∥ δ₁): |u| integrated piecewise.
            0.5 * u * u.abs()
        }
    }
    sqrt_a * (antideriv(u1, k) - antideriv(u0, k))
}

/// Elementary time intervals: the merged, deduplicated vertex instants of
/// both trajectories restricted to the overlap of their spans (shared
/// construction in [`super::times`]).
fn elementary_times(p: &Trajectory, a: &Trajectory) -> Vec<Timestamp> {
    let mut ts = Vec::new();
    super::times::elementary_times_into(p, a, &mut ts);
    ts.into_iter().map(Timestamp::from_secs).collect()
}

/// `∫ dist(loc(p,t), loc(a,t)) dt` over the overlap of the two spans, in
/// metre·seconds — the unnormalized form of the paper's equation (3)
/// numerator, exact (closed form) for piecewise-linear trajectories.
///
/// Returns 0 when the spans do not overlap in an interval of positive
/// length.
pub fn integrated_synchronous_distance(p: &Trajectory, a: &Trajectory) -> f64 {
    let times = elementary_times(p, a);
    let mut total = 0.0;
    for w in times.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        let dt = (t1 - t0).as_secs();
        // Elementary times lie in both spans by construction; if float
        // edge effects ever put one outside, skipping the sliver keeps
        // the integral finite instead of aborting the caller.
        let (Some(p0), Some(p1), Some(a0), Some(a1)) = (
            position_at(p, t0),
            position_at(p, t1),
            position_at(a, t0),
            position_at(a, t1),
        ) else {
            continue;
        };
        total += dt * mean_linear_displacement(p0 - a0, p1 - a1);
    }
    total
}

/// The paper's average synchronous error `α(p, a)` in metres: the
/// time-average synchronous distance over the overlap of the two spans.
///
/// # Panics
/// Panics when the spans do not overlap in an interval of positive
/// length — comparing temporally disjoint trajectories is a programming
/// error, not a data condition.
pub fn average_synchronous_error(p: &Trajectory, a: &Trajectory) -> f64 {
    let lo = p.start_time().as_secs().max(a.start_time().as_secs());
    let hi = p.end_time().as_secs().min(a.end_time().as_secs());
    assert!(
        lo < hi,
        "average_synchronous_error requires temporally overlapping trajectories"
    );
    integrated_synchronous_distance(p, a) / (hi - lo)
}

/// Numeric cross-check of [`average_synchronous_error`] by adaptive
/// Simpson quadrature of the synchronous distance. Slower but derived
/// independently of the closed form; used by tests and the
/// `ablation_error_eval` benchmark.
pub fn average_synchronous_error_numeric(p: &Trajectory, a: &Trajectory, tol: f64) -> f64 {
    let times = elementary_times(p, a);
    assert!(times.len() >= 2, "requires temporally overlapping trajectories");
    let mut total = 0.0;
    for w in times.windows(2) {
        let (t0, t1) = (w[0].as_secs(), w[1].as_secs());
        let q = integrate_adaptive(
            // Out-of-span evaluations (float edge effects at interval
            // endpoints) contribute zero rather than aborting.
            |t| synchronous_distance(p, a, Timestamp::from_secs(t)).unwrap_or(0.0),
            t0,
            t1,
            tol,
            40,
        );
        total += q.value;
    }
    // `times.len() >= 2` was asserted above.
    let last = times.last().copied().unwrap_or(times[0]);
    let span = (last - times[0]).as_secs();
    total / span
}

/// The maximum synchronous distance over the whole shared interval, in
/// metres — exact, because `|δ(t)|` is convex on every elementary
/// interval and therefore attains its maximum at an interval endpoint.
pub fn max_synchronous_error(p: &Trajectory, a: &Trajectory) -> f64 {
    elementary_times(p, a)
        .iter()
        .filter_map(|&t| synchronous_distance(p, a, t))
        .fold(0.0, f64::max)
}

/// One elementary interval of a synchronous-error profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSegment {
    /// Interval start.
    pub from: Timestamp,
    /// Interval end.
    pub to: Timestamp,
    /// Average synchronous distance over the interval, metres.
    pub mean_m: f64,
    /// Maximum synchronous distance over the interval, metres (exact:
    /// the distance is convex on the interval).
    pub max_m: f64,
}

/// The per-interval error profile of an approximation: for every
/// elementary interval (between consecutive vertices of either
/// trajectory), the exact mean and max synchronous distance.
///
/// This is the diagnostic behind threshold tuning — it shows *where* in
/// the trip the error concentrates (typically at dwells removed by
/// spatially-minded algorithms).
pub fn error_profile(p: &Trajectory, a: &Trajectory) -> Vec<ErrorSegment> {
    let times = elementary_times(p, a);
    times
        .windows(2)
        .filter_map(|w| {
            let (t0, t1) = (w[0], w[1]);
            // Skip slivers pushed outside a span by float edge effects.
            let (Some(p0), Some(p1), Some(a0), Some(a1)) = (
                position_at(p, t0),
                position_at(p, t1),
                position_at(a, t0),
                position_at(a, t1),
            ) else {
                return None;
            };
            let (d0, d1) = (p0 - a0, p1 - a1);
            Some(ErrorSegment {
                from: t0,
                to: t1,
                mean_m: mean_linear_displacement(d0, d1),
                max_m: d0.norm().max(d1.norm()),
            })
        })
        .collect()
}

/// SED quantiles at the original sample instants: for each requested
/// quantile `q ∈ [0, 1]` (nearest-rank), the SED value such that a
/// fraction `q` of samples err at most that much. Returns one value per
/// entry of `quantiles`, or an empty vector when no sample instant falls
/// inside `a`'s span.
///
/// Complements the mean/max of [`sed_at_samples`] with distribution
/// shape — a compressed archive is often judged by its p95, not its
/// mean.
///
/// # Panics
/// Panics if any requested quantile is outside `[0, 1]`.
pub fn sed_quantiles(p: &Trajectory, a: &Trajectory, quantiles: &[f64]) -> Vec<f64> {
    assert!(
        quantiles.iter().all(|q| (0.0..=1.0).contains(q)),
        "quantiles must lie in [0, 1]"
    );
    let mut seds: Vec<f64> = p
        .fixes()
        .iter()
        .filter_map(|f| position_at(a, f.t).map(|apos| apos.distance(f.pos)))
        .collect();
    if seds.is_empty() {
        return Vec::new();
    }
    seds.sort_unstable_by(f64::total_cmp);
    let n = seds.len();
    quantiles
        .iter()
        .map(|&q| {
            // Nearest-rank quantile.
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            seds[rank - 1]
        })
        .collect()
}

/// Mean and maximum SED at the *original sample instants*: for every fix
/// of `p` inside `a`'s span, the distance to `a`'s synchronized position.
///
/// This is the discrete cousin of `α` (cheap, but sensitive to the
/// number of data points — the bias the paper's integral notion removes).
pub fn sed_at_samples(p: &Trajectory, a: &Trajectory) -> (f64, f64) {
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut n = 0usize;
    for f in p.fixes() {
        if let Some(apos) = position_at(a, f.t) {
            let d = apos.distance(f.pos);
            sum += d;
            max = max.max(d);
            n += 1;
        }
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (sum / n as f64, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_geom::numeric::approx_eq;

    fn t(triples: &[(f64, f64, f64)]) -> Trajectory {
        Trajectory::from_triples(triples.iter().copied()).unwrap()
    }

    #[test]
    fn identical_trajectories_have_zero_error() {
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 50.0, 30.0), (20.0, 90.0, -10.0)]);
        assert!(average_synchronous_error(&p, &p) < 1e-12);
        assert!(max_synchronous_error(&p, &p) < 1e-12);
    }

    #[test]
    fn translated_trajectory_case_c1_zero() {
        // Paper case c₁ = 0: approximation is a vector translation →
        // error is exactly the translation length everywhere.
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 100.0, 0.0), (30.0, 100.0, 200.0)]);
        let a = t(&[(0.0, 3.0, 4.0), (10.0, 103.0, 4.0), (30.0, 103.0, 204.0)]);
        assert!(approx_eq(average_synchronous_error(&p, &a), 5.0, 1e-9, 1e-12));
        assert!(approx_eq(max_synchronous_error(&p, &a), 5.0, 1e-9, 1e-12));
    }

    #[test]
    fn shared_start_case_is_half_final_displacement() {
        // Paper subcase "segments share start point": α over one segment
        // = ½·|δ₁|. p and a both start at the origin at t=0; at t=10 they
        // are 8 m apart.
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]);
        let a = t(&[(0.0, 0.0, 0.0), (10.0, 10.0, 8.0)]);
        assert!(approx_eq(average_synchronous_error(&p, &a), 4.0, 1e-9, 1e-12));
    }

    #[test]
    fn shared_end_case_is_half_initial_displacement() {
        let p = t(&[(0.0, 0.0, 6.0), (10.0, 10.0, 0.0)]);
        let a = t(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]);
        assert!(approx_eq(average_synchronous_error(&p, &a), 3.0, 1e-9, 1e-12));
    }

    #[test]
    fn parallel_chords_case_det_zero() {
        // δ₀ = (0, 2), δ₁ = (0, 6): parallel, no sign change →
        // ∫|δ| = mean of a linear function = 4.
        let p = t(&[(0.0, 0.0, 2.0), (10.0, 10.0, 6.0)]);
        let a = t(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]);
        assert!(approx_eq(average_synchronous_error(&p, &a), 4.0, 1e-9, 1e-12));
    }

    #[test]
    fn parallel_chords_with_sign_change() {
        // δ goes from (0,-3) to (0,3) linearly: |δ| is a vee; average =
        // (∫₀^½ |−3+6s| ds + …) = 1.5.
        let p = t(&[(0.0, 0.0, -3.0), (10.0, 10.0, 3.0)]);
        let a = t(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]);
        assert!(approx_eq(average_synchronous_error(&p, &a), 1.5, 1e-9, 1e-12));
    }

    #[test]
    fn general_case_matches_numeric_integration() {
        let p = t(&[
            (0.0, 0.0, 0.0),
            (10.0, 120.0, 30.0),
            (20.0, 180.0, 140.0),
            (35.0, 60.0, 190.0),
            (50.0, -40.0, 90.0),
        ]);
        let a = t(&[(0.0, 0.0, 0.0), (50.0, -40.0, 90.0)]);
        let closed = average_synchronous_error(&p, &a);
        let numeric = average_synchronous_error_numeric(&p, &a, 1e-10);
        assert!(
            approx_eq(closed, numeric, 1e-6, 1e-9),
            "closed={closed} numeric={numeric}"
        );
        assert!(closed > 0.0);
    }

    #[test]
    fn weighted_average_equation_3() {
        // First segment: displacement grows linearly 2 m → 8 m (parallel
        // chords, same sign ⇒ segment average 5 m) for 10 s; second
        // segment: constant 8 m for 30 s. Equation (3):
        // α = (10·5 + 30·8)/40 = 7.25.
        let p = t(&[(0.0, 0.0, 2.0), (10.0, 100.0, 8.0), (40.0, 400.0, 8.0)]);
        let a = t(&[(0.0, 0.0, 0.0), (10.0, 100.0, 0.0), (40.0, 400.0, 0.0)]);
        assert!(approx_eq(average_synchronous_error(&p, &a), 7.25, 1e-9, 1e-12));
    }

    #[test]
    fn approximation_vertices_inside_p_segments_are_handled() {
        // a has a vertex at t=5, strictly inside p's single segment —
        // the merged elementary intervals must split there.
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]);
        let a = t(&[(0.0, 0.0, 0.0), (5.0, 5.0, 10.0), (10.0, 10.0, 0.0)]);
        let closed = average_synchronous_error(&p, &a);
        let numeric = average_synchronous_error_numeric(&p, &a, 1e-10);
        assert!(approx_eq(closed, numeric, 1e-7, 1e-9));
        // δ is 0 → 10 → 0 triangle-ish: average must be 5 (linear |δ|).
        assert!(approx_eq(closed, 5.0, 1e-9, 1e-12));
    }

    #[test]
    fn overlap_restriction() {
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0), (20.0, 20.0, 0.0)]);
        // a covers only [5, 15]; constant offset 7 m in y over the overlap.
        let a = t(&[(5.0, 5.0, 7.0), (15.0, 15.0, 7.0)]);
        assert!(approx_eq(average_synchronous_error(&p, &a), 7.0, 1e-9, 1e-12));
        assert!(approx_eq(max_synchronous_error(&p, &a), 7.0, 1e-9, 1e-12));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn disjoint_spans_panic() {
        let p = t(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]);
        let a = t(&[(5.0, 0.0, 0.0), (6.0, 1.0, 0.0)]);
        let _ = average_synchronous_error(&p, &a);
    }

    #[test]
    fn sed_at_samples_discrete_statistics() {
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 100.0, 0.0), (20.0, 100.0, 100.0)]);
        let a = p.select(&[0, 2]); // straight-line approximation
        let (mean, max) = sed_at_samples(&p, &a);
        let expect = 5000.0f64.sqrt(); // middle sample offset
        // Endpoints have zero SED; only the middle sample contributes.
        assert!(approx_eq(mean, expect / 3.0, 1e-9, 1e-12));
        assert!(approx_eq(max, expect, 1e-9, 1e-12));
    }

    #[test]
    fn sed_quantiles_are_monotone_and_anchored() {
        let p = t(&[
            (0.0, 0.0, 0.0),
            (10.0, 100.0, 0.0),
            (20.0, 100.0, 100.0),
            (30.0, 0.0, 100.0),
            (40.0, 0.0, 0.0),
        ]);
        let a = p.select(&[0, 4]);
        let qs = sed_quantiles(&p, &a, &[0.0, 0.5, 0.95, 1.0]);
        assert_eq!(qs.len(), 4);
        for w in qs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "quantiles not monotone: {qs:?}");
        }
        // q=1.0 is the max sample SED.
        let (_, max) = sed_at_samples(&p, &a);
        assert!(approx_eq(qs[3], max, 1e-12, 1e-12));
        // q=0.0 is the min sample SED (an endpoint → 0).
        assert!(qs[0] < 1e-12);
    }

    #[test]
    fn sed_quantiles_empty_when_disjoint_samples() {
        let p = t(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]);
        let a = t(&[(5.0, 0.0, 0.0), (6.0, 1.0, 0.0)]);
        assert!(sed_quantiles(&p, &a, &[0.5]).is_empty());
    }

    #[test]
    #[should_panic(expected = "quantiles")]
    fn sed_quantiles_reject_out_of_range() {
        let p = t(&[(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]);
        let _ = sed_quantiles(&p, &p, &[1.5]);
    }

    #[test]
    fn max_sync_error_bounds_average() {
        let p = t(&[
            (0.0, 0.0, 0.0),
            (10.0, 80.0, 40.0),
            (20.0, 10.0, 90.0),
            (30.0, -30.0, 20.0),
        ]);
        let a = p.select(&[0, 3]);
        let avg = average_synchronous_error(&p, &a);
        let max = max_synchronous_error(&p, &a);
        assert!(avg <= max + 1e-9);
        assert!(max > 0.0);
    }

    #[test]
    fn error_profile_reconstructs_alpha() {
        let p = t(&[
            (0.0, 0.0, 0.0),
            (10.0, 80.0, 40.0),
            (20.0, 10.0, 90.0),
            (30.0, -30.0, 20.0),
        ]);
        let a = p.select(&[0, 3]);
        let profile = error_profile(&p, &a);
        assert_eq!(profile.len(), 3, "three original segments");
        // Weighted mean of the profile equals α.
        let total: f64 = profile
            .iter()
            .map(|s| s.mean_m * (s.to - s.from).as_secs())
            .sum();
        let span: f64 = profile.iter().map(|s| (s.to - s.from).as_secs()).sum();
        let alpha = average_synchronous_error(&p, &a);
        assert!(approx_eq(total / span, alpha, 1e-9, 1e-12));
        // Profile max equals the global max.
        let pmax = profile.iter().map(|s| s.max_m).fold(0.0f64, f64::max);
        assert!(approx_eq(pmax, max_synchronous_error(&p, &a), 1e-9, 1e-12));
        // Per-interval: mean ≤ max; intervals tile the span.
        for s in &profile {
            assert!(s.mean_m <= s.max_m + 1e-9);
        }
        for w in profile.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
    }

    #[test]
    fn integrated_distance_scales_with_duration() {
        // Constant 2 m offset over 40 s → 80 m·s.
        let p = t(&[(0.0, 0.0, 2.0), (40.0, 100.0, 2.0)]);
        let a = t(&[(0.0, 0.0, 0.0), (40.0, 100.0, 0.0)]);
        assert!(approx_eq(integrated_synchronous_distance(&p, &a), 80.0, 1e-9, 1e-12));
    }

    /// The paper-case counters must attribute known geometries to the
    /// right branch of the α case analysis. The registry is global and
    /// tests run in parallel, so assertions are on monotone deltas.
    #[cfg(feature = "obs")]
    #[test]
    fn case_counters_fire_for_known_geometries() {
        let translation = traj_obs::registry().counter("error", "alpha_case_translation");
        let parallel = traj_obs::registry().counter("error", "alpha_case_parallel");
        let general = traj_obs::registry().counter("error", "alpha_case_general");

        // Pure translation (c₁ = 0), two segments → two translation hits.
        let t0 = translation.get();
        let p = t(&[(0.0, 0.0, 0.0), (10.0, 100.0, 0.0), (30.0, 100.0, 200.0)]);
        let a = t(&[(0.0, 3.0, 4.0), (10.0, 103.0, 4.0), (30.0, 103.0, 204.0)]);
        let _ = average_synchronous_error(&p, &a);
        assert!(
            translation.get() >= t0 + 2,
            "both segments of a translated trajectory are case c1=0"
        );

        // Parallel displacements (det = 0) with a genuine direction
        // change: δ₀ = (0,2) ∥ δ₁ = (0,6).
        let p0 = parallel.get();
        let p = t(&[(0.0, 0.0, 2.0), (10.0, 10.0, 6.0)]);
        let a = t(&[(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)]);
        let _ = average_synchronous_error(&p, &a);
        assert!(parallel.get() > p0, "parallel chords are the det=0 case");

        // Non-degenerate displacement pair → the general asinh case.
        let g0 = general.get();
        let p = t(&[(0.0, 0.0, 5.0), (10.0, 10.0, 0.0)]);
        let a = t(&[(0.0, 4.0, 0.0), (10.0, 10.0, 7.0)]);
        let _ = average_synchronous_error(&p, &a);
        assert!(general.get() > g0, "skew displacements are the general case");
    }

    #[test]
    fn tiny_interval_numerical_stability() {
        // Sub-millisecond segments with near-identical displacements must
        // not produce NaN.
        let p = t(&[(0.0, 0.0, 1e-9), (1e-3, 1e-3, 1e-9)]);
        let a = t(&[(0.0, 0.0, 0.0), (1e-3, 1e-3, 0.0)]);
        let e = average_synchronous_error(&p, &a);
        assert!(e.is_finite());
        assert!(approx_eq(e, 1e-9, 1e-12, 1e-6));
    }
}
