//! Error notions for trajectory compression (paper §4).
//!
//! The paper's key evaluation tool is the **average synchronous error**
//! `α(p, a)` (§4.2): the time-average of the distance between the
//! original object and the approximated object travelling their
//! trajectories *synchronously*. [`synchronized`] provides it in closed
//! form (with the paper's full case analysis) together with the
//! sample-point SED statistics; [`perpendicular`] provides the classic
//! line-generalization error family (§4.1, Fig. 5a) for comparison.
//!
//! [`evaluate`] bundles everything into one [`Evaluation`] per
//! compression result — the record behind every figure of the paper.

pub mod eval;
pub mod perpendicular;
pub mod spline;
pub mod synchronized;
mod times;

pub use eval::{evaluate_sweep, evaluate_with, ErrorEval, EvalWorkspace};
pub use perpendicular::{
    area_perpendicular_error, max_perpendicular_error, mean_perpendicular_error,
};
pub use spline::{interpolation_model_gap, spline_synchronous_error};
pub use synchronized::{
    average_synchronous_error, average_synchronous_error_numeric, error_profile,
    integrated_synchronous_distance, max_synchronous_error, sed_at_samples, sed_quantiles,
    ErrorSegment,
};

use crate::result::CompressionResult;
use traj_model::Trajectory;

/// The full error/compression record for one (trajectory, compressor,
/// threshold) cell of the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Percentage of points removed.
    pub compression_pct: f64,
    /// Average synchronous error `α(p, a)` in metres (paper §4.2) — the
    /// "Error (meter)" axis of Figs. 7–11.
    pub avg_sync_err_m: f64,
    /// Maximum synchronous distance over the whole time interval, metres.
    pub max_sync_err_m: f64,
    /// Mean SED at the original sample instants, metres.
    pub mean_sed_m: f64,
    /// Maximum SED at the original sample instants, metres.
    pub max_sed_m: f64,
    /// Mean perpendicular distance of removed points to their covering
    /// approximation line, metres (the classic error, §4.1).
    pub mean_perp_m: f64,
    /// Maximum perpendicular distance of removed points, metres.
    pub max_perp_m: f64,
}

/// Evaluates a compression result against its original trajectory under
/// every error notion.
///
/// # Panics
/// Panics if `result` does not belong to `original` (length mismatch).
pub fn evaluate(original: &Trajectory, result: &CompressionResult) -> Evaluation {
    let approx = result.apply(original);
    let (mean_sed, max_sed) = sed_at_samples(original, &approx);
    let (mean_perp, max_perp) = (
        mean_perpendicular_error(original, result),
        max_perpendicular_error(original, result),
    );
    Evaluation {
        compression_pct: result.compression_pct(),
        avg_sync_err_m: average_synchronous_error(original, &approx),
        max_sync_err_m: max_synchronous_error(original, &approx),
        mean_sed_m: mean_sed,
        max_sed_m: max_sed,
        mean_perp_m: mean_perp,
        max_perp_m: max_perp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::CompressionResult;

    #[test]
    fn evaluate_identity_compression_has_zero_error() {
        let t = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 100.0, 20.0),
            (20.0, 150.0, 90.0),
        ])
        .unwrap();
        let e = evaluate(&t, &CompressionResult::identity(3));
        assert_eq!(e.compression_pct, 0.0);
        assert!(e.avg_sync_err_m < 1e-9);
        assert!(e.max_sync_err_m < 1e-9);
        assert!(e.mean_sed_m < 1e-9);
        assert!(e.max_perp_m < 1e-9);
    }

    #[test]
    fn evaluate_endpoint_compression_reports_all_notions() {
        // Right-angle detour compressed to the hypotenuse.
        let t = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 100.0, 0.0),
            (20.0, 100.0, 100.0),
        ])
        .unwrap();
        let r = CompressionResult::new(vec![0, 2], 3);
        let e = evaluate(&t, &r);
        assert!((e.compression_pct - 100.0 / 3.0).abs() < 1e-9);
        // SED at the middle sample: original (100,0) vs synchronized
        // (50,50) → √5000 ≈ 70.71; the endpoint samples contribute 0, so
        // the mean over the three samples is √5000 / 3.
        assert!((e.max_sed_m - 5000.0f64.sqrt()).abs() < 1e-9);
        assert!((e.mean_sed_m - 5000.0f64.sqrt() / 3.0).abs() < 1e-9);
        // Perpendicular distance of (100,0) to the hypotenuse is √5000.
        assert!((e.max_perp_m - 5000.0f64.sqrt()).abs() < 1e-9);
        // Average sync error is strictly between 0 and the max.
        assert!(e.avg_sync_err_m > 0.0 && e.avg_sync_err_m < e.max_sed_m);
        assert!((e.max_sync_err_m - e.max_sed_m).abs() < 1e-9);
    }

    #[test]
    fn ordering_invariants_between_notions() {
        use crate::result::Compressor;
        let t = Trajectory::from_triples((0..30).map(|i| {
            let t = i as f64 * 10.0;
            (t, i as f64 * 40.0, ((i * 13) % 7) as f64 * 15.0)
        }))
        .unwrap();
        let r = crate::douglas_peucker::TdTr::new(25.0).compress(&t);
        let e = evaluate(&t, &r);
        assert!(e.mean_sed_m <= e.max_sed_m + 1e-9);
        assert!(e.avg_sync_err_m <= e.max_sync_err_m + 1e-9);
        assert!(e.mean_perp_m <= e.max_perp_m + 1e-9);
        // Sample SED max is a lower bound on the continuous max.
        assert!(e.max_sed_m <= e.max_sync_err_m + 1e-9);
    }
}
