//! Error notions under the Catmull–Rom interpolation model (the paper's
//! §5 extension).
//!
//! Under a smoother motion model the "true" position between samples is
//! no longer the chord point, so the synchronous error of an
//! approximation changes. [`spline_synchronous_error`] evaluates the
//! compressed (piecewise-linear) approximation against the original
//! trajectory interpreted through the C¹ Catmull–Rom interpolant of
//! `traj-model::spline`; [`interpolation_model_gap`] measures how far
//! the two interpretations of the *same* data lie apart — an upper bound
//! on how much the choice of motion model can matter for any error
//! figure.
//!
//! There is no closed form for the spline integrand (the distance is the
//! norm of a cubic), so both measures use the adaptive Simpson
//! quadrature of `traj-geom`, subdivided at the merged vertex instants
//! where either motion changes definition.

use traj_geom::numeric::integrate_adaptive;
use traj_model::interp::position_at;
use traj_model::spline::spline_position_at;
use traj_model::{Timestamp, Trajectory};

/// Merged, deduplicated vertex instants of both trajectories over the
/// overlap of their spans (the shared construction of [`super::times`],
/// identical to the linear calculus).
fn elementary_times(p: &Trajectory, a: &Trajectory) -> Vec<f64> {
    let mut ts = Vec::new();
    super::times::elementary_times_into(p, a, &mut ts);
    ts
}

/// Time-average distance between the original motion under the
/// Catmull–Rom interpolant and the approximation under the linear
/// interpolant, metres.
///
/// `tol` is the per-interval quadrature tolerance in metre·seconds.
///
/// # Panics
/// Panics when the spans do not overlap in an interval of positive
/// length.
pub fn spline_synchronous_error(p: &Trajectory, a: &Trajectory, tol: f64) -> f64 {
    let times = elementary_times(p, a);
    assert!(times.len() >= 2, "requires temporally overlapping trajectories");
    let mut total = 0.0;
    for w in times.windows(2) {
        let q = integrate_adaptive(
            |t| {
                let ts = Timestamp::from_secs(t);
                // A node nudged outside either span by float edge
                // effects contributes zero instead of aborting.
                match (spline_position_at(p, ts), position_at(a, ts)) {
                    (Some(orig), Some(appr)) => orig.distance(appr),
                    _ => 0.0,
                }
            },
            w[0],
            w[1],
            tol,
            40,
        );
        total += q.value;
    }
    total / (times[times.len() - 1] - times[0])
}

/// Time-average distance between the Catmull–Rom and linear
/// interpretations of the *same* trajectory, metres — how much the
/// piecewise-linear motion assumption can move any downstream figure.
pub fn interpolation_model_gap(p: &Trajectory, tol: f64) -> f64 {
    spline_synchronous_error(p, p, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::average_synchronous_error;
    use crate::result::Compressor;

    fn curved() -> Trajectory {
        Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 100.0, 0.0),
            (20.0, 180.0, 60.0),
            (30.0, 220.0, 160.0),
            (40.0, 220.0, 280.0),
            (50.0, 170.0, 380.0),
        ])
        .unwrap()
    }

    #[test]
    fn zero_for_straight_constant_speed_identity() {
        let t = Trajectory::from_triples((0..10).map(|i| (i as f64 * 10.0, i as f64 * 80.0, 0.0)))
            .unwrap();
        assert!(spline_synchronous_error(&t, &t, 1e-8) < 1e-7);
        assert!(interpolation_model_gap(&t, 1e-8) < 1e-7);
    }

    #[test]
    fn model_gap_positive_on_curves() {
        let gap = interpolation_model_gap(&curved(), 1e-8);
        assert!(gap > 0.1, "gap {gap} suspiciously small for curved motion");
        assert!(gap < 50.0, "gap {gap} implausibly large");
    }

    #[test]
    fn matches_linear_alpha_for_two_fix_original() {
        // With ≤ 2 fixes the spline interpolant IS the linear one.
        let p = Trajectory::from_triples([(0.0, 0.0, 0.0), (10.0, 100.0, 40.0)]).unwrap();
        let a = Trajectory::from_triples([(0.0, 0.0, 10.0), (10.0, 100.0, 50.0)]).unwrap();
        let spline = spline_synchronous_error(&p, &a, 1e-9);
        let linear = average_synchronous_error(&p, &a);
        assert!((spline - linear).abs() < 1e-6, "{spline} vs {linear}");
    }

    #[test]
    fn spline_error_close_to_linear_error_plus_gap_bound() {
        // Triangle inequality: |spline_err − linear_err| ≤ model gap.
        let p = curved();
        let r = crate::douglas_peucker::TdTr::new(20.0).compress(&p);
        let a = r.apply(&p);
        let spline = spline_synchronous_error(&p, &a, 1e-8);
        let linear = average_synchronous_error(&p, &a);
        let gap = interpolation_model_gap(&p, 1e-8);
        assert!(
            (spline - linear).abs() <= gap + 1e-6,
            "spline {spline}, linear {linear}, gap {gap}"
        );
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn disjoint_spans_panic() {
        let p = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 1.0, 0.0)]).unwrap();
        let a = Trajectory::from_triples([(5.0, 0.0, 0.0), (6.0, 1.0, 0.0)]).unwrap();
        let _ = spline_synchronous_error(&p, &a, 1e-8);
    }
}
