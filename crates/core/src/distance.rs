//! Discarding criteria: perpendicular distance, synchronized (time-ratio)
//! distance, and derived-speed difference.
//!
//! The paper's central observation (§3.1) is that a trajectory is "not a
//! line but historically traced points": the classic *perpendicular*
//! distance used by line generalization ignores time, while the
//! *synchronized Euclidean distance* (SED) compares the original point
//! with where the approximated object would be *at the same instant*
//! (§3.2, Fig. 4).
//!
//! This module holds only the raw distance functions; the thresholded
//! *decisions* built on them live in [`crate::criterion`].

use traj_model::{Fix, Trajectory};

/// Perpendicular distance from `point` to the infinite line through
/// `anchor` and `float` (spatial projection; time ignored).
#[inline]
pub fn perpendicular_distance(anchor: &Fix, float: &Fix, point: &Fix) -> f64 {
    traj_geom::Segment::new(anchor.pos, float.pos).line_distance(point.pos)
}

/// Synchronized Euclidean distance (SED): the distance between `point`
/// and the position `P'ᵢ` the object would have on the straight
/// `anchor → float` trajectory at `point.t`, computed with the paper's
/// time-interval ratio (eqs. 1–2).
#[inline]
pub fn sed(anchor: &Fix, float: &Fix, point: &Fix) -> f64 {
    Fix::interpolate(anchor, float, point.t).distance(point.pos)
}

/// Absolute difference of the derived travel speeds of the two segments
/// meeting at index `i` of `traj` — the paper's `‖vᵢ − vᵢ₋₁‖` (§3.3).
///
/// Speeds are derived from timestamps and positions (`vᵢ =
/// dist(s[i+1], s[i]) / (t[i+1] − t[i])`); the paper assumes measured
/// speeds are unavailable. Returns `None` when `i` is an endpoint (no two
/// adjacent segments) or a segment has zero duration (impossible for a
/// validated [`Trajectory`]).
#[inline]
pub fn speed_difference(traj: &Trajectory, i: usize) -> Option<f64> {
    crate::criterion::speed_difference_at(traj.fixes(), i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::Timestamp;

    fn fix(t: f64, x: f64, y: f64) -> Fix {
        Fix::from_parts(t, x, y)
    }

    #[test]
    fn perpendicular_ignores_time() {
        let a = fix(0.0, 0.0, 0.0);
        let b = fix(10.0, 10.0, 0.0);
        // Same geometry, wildly different timestamp: perp distance equal.
        let p1 = fix(1.0, 5.0, 3.0);
        let p2 = fix(9.0, 5.0, 3.0);
        assert_eq!(perpendicular_distance(&a, &b, &p1), 3.0);
        assert_eq!(perpendicular_distance(&a, &b, &p2), 3.0);
    }

    #[test]
    fn sed_depends_on_time() {
        let a = fix(0.0, 0.0, 0.0);
        let b = fix(10.0, 10.0, 0.0);
        // Point spatially on the line but temporally early: the
        // synchronized position at t=2 is (2, 0); the point sits at x=8.
        let p = fix(2.0, 8.0, 0.0);
        assert_eq!(perpendicular_distance(&a, &b, &p), 0.0);
        assert_eq!(sed(&a, &b, &p), 6.0);
    }

    #[test]
    fn sed_matches_figure_4_construction() {
        // Ps=(0, 0,0), Pe=(100, 100,50); Pi at ti=25 sits at (30, 20).
        // P'i = (25, 12.5); distance = √(25 + 56.25).
        let ps = fix(0.0, 0.0, 0.0);
        let pe = fix(100.0, 100.0, 50.0);
        let pi = fix(25.0, 30.0, 20.0);
        let expect = ((30.0f64 - 25.0).powi(2) + (20.0f64 - 12.5).powi(2)).sqrt();
        assert!((sed(&ps, &pe, &pi) - expect).abs() < 1e-12);
    }

    #[test]
    fn sed_is_zero_for_points_on_the_synchronized_path() {
        let a = fix(0.0, 0.0, 0.0);
        let b = fix(10.0, 20.0, 10.0);
        let p = fix(5.0, 10.0, 5.0);
        assert_eq!(sed(&a, &b, &p), 0.0);
        // Fix::interpolate handles the endpoints.
        assert_eq!(sed(&a, &b, &a), 0.0);
        assert_eq!(sed(&a, &b, &b), 0.0);
    }

    #[test]
    fn speed_difference_at_a_kink() {
        // 1 m/s for 10 s, then 3 m/s for 10 s.
        let t = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 10.0, 0.0),
            (20.0, 40.0, 0.0),
        ])
        .unwrap();
        assert_eq!(speed_difference(&t, 1), Some(2.0));
        assert_eq!(speed_difference(&t, 0), None);
        assert_eq!(speed_difference(&t, 2), None);
    }

    #[test]
    fn speed_difference_constant_speed_is_zero() {
        let t = Trajectory::from_triples([
            (0.0, 0.0, 0.0),
            (10.0, 10.0, 0.0),
            (20.0, 20.0, 0.0),
        ])
        .unwrap();
        assert_eq!(speed_difference(&t, 1), Some(0.0));
    }

    #[test]
    fn sed_of_degenerate_anchor_float_pair() {
        // anchor and float at the same instant: interpolation degenerates
        // to the anchor position.
        let a = fix(5.0, 1.0, 1.0);
        let b = Fix::new(Timestamp::from_secs(5.0), traj_geom::Point2::new(9.0, 9.0));
        let p = fix(5.0, 4.0, 5.0);
        assert_eq!(sed(&a, &b, &p), 5.0);
    }
}
