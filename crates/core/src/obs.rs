//! Per-call metric accumulation for the compression algorithms.
//!
//! The hot loops of this crate run millions of distance evaluations;
//! touching an atomic (let alone a registry mutex) per evaluation would
//! distort the very measurements the paper reproduces. [`AlgoRun`]
//! therefore accumulates plain integers on the stack during one
//! compression call and flushes them into the global `traj-obs` registry
//! exactly once, labeled by the algorithm family.
//!
//! With the `obs` feature disabled the struct is a zero-sized type and
//! every method an empty `#[inline(always)]` body, so the algorithms
//! compile to the same code as before instrumentation existed.
//!
//! Metrics flushed (subsystem `compress`, label `algo`):
//!
//! | name             | kind      | meaning |
//! |------------------|-----------|---------|
//! | `runs`           | counter   | compression calls |
//! | `points_in`      | counter   | input points across runs |
//! | `points_out`     | counter   | kept points across runs |
//! | `sed_evals`      | counter   | metric distance / criterion evaluations |
//! | `dp_depth`       | histogram | top-down split depth per run |
//! | `windows_opened` | counter   | opening-window windows opened |
//! | `windows_closed` | counter   | opening-window windows closed |
//! | `forced_cuts`    | counter   | stream cuts forced by `max_window` |
//! | `merge_steps`    | counter   | bottom-up merges executed |
//! | `heap_pops`      | counter   | candidate-heap pops |
//!
//! The one-pass SED family flushes two more under subsystem `onepass`
//! (same `algo` label): `onepass.checks` counts fitting-region
//! feasibility checks (one per input point past the anchor) and
//! `onepass.regions_closed` counts region closes (= emitted anchors).
//!
//! The workspace layer flushes two more (subsystem `ws`, unlabeled):
//! `ws.reuse` counts `compress_into` calls served by a warm
//! [`crate::Workspace`], and `ws.bytes_saved` the approximate scratch
//! bytes those calls did not have to allocate.

#[cfg(not(feature = "obs"))]
pub(crate) use disabled::AlgoRun;
#[cfg(feature = "obs")]
pub(crate) use enabled::AlgoRun;

/// Credits one warm-workspace run to the `ws.reuse` / `ws.bytes_saved`
/// counters. Called once per `compress_into` on a non-cold workspace —
/// the same flush-once discipline as [`AlgoRun`].
#[cfg(feature = "obs")]
pub(crate) fn note_workspace_reuse(bytes: u64) {
    let r = traj_obs::registry();
    r.counter("ws", "reuse").inc();
    r.counter("ws", "bytes_saved").add(bytes);
}

/// Records one trajectory-column bind: `layout.cols_built` when the
/// columns had to be (re)filled, `layout.cols_reuse` when the bind was
/// served by the identity-keyed cache (including columns seeded from
/// another workspace — how the compress→evaluate pipeline proves it
/// de-interleaved the trajectory only once).
#[cfg(feature = "obs")]
pub(crate) fn note_columns(rebuilt: bool) {
    let r = traj_obs::registry();
    if rebuilt {
        r.counter("layout", "cols_built").inc();
    } else {
        r.counter("layout", "cols_reuse").inc();
    }
}

#[cfg(feature = "obs")]
mod enabled {
    /// Stack-local accumulator; see the module docs.
    #[derive(Debug, Clone, Default)]
    pub(crate) struct AlgoRun {
        sed_evals: u64,
        max_depth: u64,
        windows_opened: u64,
        windows_closed: u64,
        forced_cuts: u64,
        merge_steps: u64,
        heap_pops: u64,
        op_checks: u64,
        op_closes: u64,
    }

    impl AlgoRun {
        #[inline]
        pub(crate) fn new() -> Self {
            AlgoRun::default()
        }

        #[inline]
        pub(crate) fn sed_evals(&mut self, n: u64) {
            self.sed_evals += n;
        }

        #[inline]
        pub(crate) fn depth(&mut self, d: u64) {
            if d > self.max_depth {
                self.max_depth = d;
            }
        }

        #[inline]
        pub(crate) fn window_opened(&mut self) {
            self.windows_opened += 1;
        }

        #[inline]
        pub(crate) fn window_closed(&mut self) {
            self.windows_closed += 1;
        }

        #[inline]
        pub(crate) fn forced_cut(&mut self) {
            self.forced_cuts += 1;
        }

        #[inline]
        pub(crate) fn merge_step(&mut self) {
            self.merge_steps += 1;
        }

        #[inline]
        pub(crate) fn heap_pop(&mut self) {
            self.heap_pops += 1;
        }

        #[inline]
        pub(crate) fn op_check(&mut self) {
            self.op_checks += 1;
        }

        #[inline]
        pub(crate) fn op_close(&mut self) {
            self.op_closes += 1;
        }

        /// Publishes the accumulated run into the global registry under
        /// the static `algo` family label. Zero-valued window/merge/heap
        /// counters are skipped so algorithms only surface the metrics
        /// that apply to them.
        pub(crate) fn flush(&self, algo: &'static str, points_in: usize, points_out: usize) {
            let r = traj_obs::registry();
            let labels: &[(&str, &str)] = &[("algo", algo)];
            r.counter_with("compress", "runs", labels).inc();
            r.counter_with("compress", "points_in", labels).add(points_in as u64);
            r.counter_with("compress", "points_out", labels).add(points_out as u64);
            r.counter_with("compress", "sed_evals", labels).add(self.sed_evals);
            if self.max_depth > 0 {
                r.histogram_with("compress", "dp_depth", labels).record(self.max_depth);
            }
            for (name, value) in [
                ("windows_opened", self.windows_opened),
                ("windows_closed", self.windows_closed),
                ("forced_cuts", self.forced_cuts),
                ("merge_steps", self.merge_steps),
                ("heap_pops", self.heap_pops),
            ] {
                if value > 0 {
                    r.counter_with("compress", name, labels).add(value);
                }
            }
            for (name, value) in
                [("checks", self.op_checks), ("regions_closed", self.op_closes)]
            {
                if value > 0 {
                    r.counter_with("onepass", name, labels).add(value);
                }
            }
        }
    }
}

#[cfg(not(feature = "obs"))]
mod disabled {
    /// Zero-sized stand-in; every method compiles away.
    #[derive(Debug, Clone, Default)]
    pub(crate) struct AlgoRun;

    #[allow(clippy::unused_self)]
    impl AlgoRun {
        #[inline(always)]
        pub(crate) fn new() -> Self {
            AlgoRun
        }

        #[inline(always)]
        pub(crate) fn sed_evals(&mut self, _n: u64) {}

        #[inline(always)]
        pub(crate) fn depth(&mut self, _d: u64) {}

        #[inline(always)]
        pub(crate) fn window_opened(&mut self) {}

        #[inline(always)]
        pub(crate) fn window_closed(&mut self) {}

        #[inline(always)]
        pub(crate) fn forced_cut(&mut self) {}

        #[inline(always)]
        pub(crate) fn merge_step(&mut self) {}

        #[inline(always)]
        pub(crate) fn heap_pop(&mut self) {}

        #[inline(always)]
        pub(crate) fn op_check(&mut self) {}

        #[inline(always)]
        pub(crate) fn op_close(&mut self) {}

        #[inline(always)]
        pub(crate) fn flush(&self, _algo: &'static str, _points_in: usize, _points_out: usize) {}
    }
}
