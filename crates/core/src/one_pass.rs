//! One-pass SED simplification with a strict error bound: OP-FIT and
//! OP-CONE.
//!
//! The paper's best spatiotemporal compressors pay for the synchronized
//! Euclidean distance with an `O(N²)` worst case: OPW-TR re-checks its
//! whole open window per float advance, TD-TR rescans intervals per
//! split. Lin et al., *"One-Pass Trajectory Simplification Using the
//! Synchronous Euclidean Distance"* (arXiv 1801.05360), observe that the
//! SED constraint can be carried forward instead of re-evaluated: each
//! processed point contributes one convex constraint on the *average
//! velocity* of the open segment, and a candidate end point is feasible
//! iff its average velocity satisfies every constraint seen so far.
//!
//! ## The velocity-space transformation
//!
//! Fix an anchor `a` and write `cᵢ = tᵢ − t_a` for a later point `i`.
//! If the open segment eventually ends at point `e`, the approximation
//! travels with constant average velocity `v = (P_e − P_a) / c_e` and
//! the synchronized position at `tᵢ` is `P_a + v·cᵢ`. Hence
//!
//! ```text
//! SEDᵢ = ‖P_a + v·cᵢ − Pᵢ‖ = cᵢ · ‖v − uᵢ‖,    uᵢ = (Pᵢ − P_a) / cᵢ,
//! ```
//!
//! and `SEDᵢ ≤ ε` is exactly the *disk* constraint `‖v − uᵢ‖ ≤ ε/cᵢ`.
//! A segment `a → e` respects the bound for **every** interior point iff
//! `u_e` lies in the intersection of all interior disks. The algorithms
//! here maintain an *inscribed* convex under-approximation of that
//! intersection in O(1) state:
//!
//! * [`OnePassFit`] (OPERB-style) — intersects the axis-aligned squares
//!   inscribed in the disks, so the fitting region is a single rectangle:
//!   four floats, O(1) per point.
//! * [`OnePassCone`] (CISED-style) — intersects the regular `m`-gons
//!   inscribed in the disks. Because every `m`-gon uses the same `m`
//!   fixed edge directions, the intersection keeps one tightest offset
//!   per direction: `m` floats, O(m) per point, and a tighter region
//!   (less early closing, better compression) as `m` grows.
//!
//! Using inscribed subregions keeps both *sound*: the region is a subset
//! of the true disk intersection, so an accepted end point can only be
//! conservative — the declared SED bound is **strict** for every emitted
//! segment, unlike OPW-TR's final forced segment or bottom-up's merge
//! heuristic. The price is that a region may close slightly before the
//! exact disk intersection would have, keeping a few more points.
//!
//! Both kernels process each input point at most twice (once against the
//! old anchor, once against a fresh one after a close), giving true
//! `O(N)` batch complexity and an O(1)-state streaming form
//! ([`crate::streaming::OnePassStream`]) that is bit-identical to the
//! batch kernels. See `DESIGN.md` §2e for the invariant write-up.

use crate::obs::AlgoRun;
use crate::result::{CompressionResult, CompressionResultBuf, Compressor};
use crate::workspace::Workspace;
use traj_geom::Vec2;
use traj_model::{Fix, Trajectory};

/// A convex under-approximation of the feasible average-velocity set of
/// the open segment (the "fitting region").
///
/// Implementations must keep the region a subset of the intersection of
/// every disk passed to [`Region::add`] since the last
/// [`Region::reset`]; that subset property is what makes the one-pass
/// bound strict.
pub(crate) trait Region {
    /// Restores the region to the whole plane (fresh anchor).
    fn reset(&mut self);
    /// Whether velocity `u` satisfies every constraint added so far.
    fn contains(&self, u: Vec2) -> bool;
    /// Intersects the region with (an inscribed subset of) the disk of
    /// radius `r` centred at `u`.
    fn add(&mut self, u: Vec2, r: f64);
}

/// Rectangular fitting region: the intersection of the axis-aligned
/// squares inscribed in the constraint disks (half-width `r/√2`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FitRegion {
    lo_x: f64,
    hi_x: f64,
    lo_y: f64,
    hi_y: f64,
}

impl FitRegion {
    /// The unconstrained region (whole velocity plane).
    pub(crate) fn new() -> Self {
        FitRegion {
            lo_x: f64::NEG_INFINITY,
            hi_x: f64::INFINITY,
            lo_y: f64::NEG_INFINITY,
            hi_y: f64::INFINITY,
        }
    }
}

impl Region for FitRegion {
    #[inline]
    fn reset(&mut self) {
        *self = FitRegion::new();
    }

    #[inline]
    fn contains(&self, u: Vec2) -> bool {
        self.lo_x <= u.x && u.x <= self.hi_x && self.lo_y <= u.y && u.y <= self.hi_y
    }

    #[inline]
    fn add(&mut self, u: Vec2, r: f64) {
        let h = r * std::f64::consts::FRAC_1_SQRT_2;
        self.lo_x = self.lo_x.max(u.x - h);
        self.hi_x = self.hi_x.min(u.x + h);
        self.lo_y = self.lo_y.max(u.y - h);
        self.hi_y = self.hi_y.min(u.y + h);
    }
}

/// Fills `dirs` with the `m` unit edge normals shared by every inscribed
/// `m`-gon: `(cos θₖ, sin θₖ)` for `θₖ = 2πk/m`.
pub(crate) fn cone_directions(m: usize, dirs: &mut Vec<(f64, f64)>) {
    dirs.clear();
    dirs.extend((0..m).map(|k| {
        let (s, c) = (2.0 * std::f64::consts::PI * k as f64 / m as f64).sin_cos();
        (c, s)
    }));
}

/// Apothem factor of a regular `m`-gon inscribed in the unit circle: the
/// polygon `{v : nₖ·(v−u) ≤ r·cos(π/m)}` has its vertices *on* the
/// circle of radius `r`, hence is contained in the disk.
pub(crate) fn cone_apothem(m: usize) -> f64 {
    (std::f64::consts::PI / m as f64).cos()
}

/// Polygonal fitting region: the intersection of regular `m`-gons
/// inscribed in the constraint disks.
///
/// All `m`-gons share the same `m` edge directions, so their
/// intersection is again an `m`-direction polygon and one offset per
/// direction suffices — `dirs`/`off` are borrowed (from a
/// [`Workspace`] in the batch kernel, from owned buffers in the stream)
/// so the hot path allocates nothing.
#[derive(Debug)]
pub(crate) struct ConeRegion<'a> {
    pub(crate) dirs: &'a [(f64, f64)],
    pub(crate) off: &'a mut [f64],
    pub(crate) apothem: f64,
}

impl Region for ConeRegion<'_> {
    #[inline]
    fn reset(&mut self) {
        for o in self.off.iter_mut() {
            *o = f64::INFINITY;
        }
    }

    #[inline]
    fn contains(&self, u: Vec2) -> bool {
        self.dirs
            .iter()
            .zip(self.off.iter())
            .all(|(&(nx, ny), &d)| nx * u.x + ny * u.y <= d)
    }

    #[inline]
    fn add(&mut self, u: Vec2, r: f64) {
        let a = r * self.apothem;
        for (&(nx, ny), d) in self.dirs.iter().zip(self.off.iter_mut()) {
            let nd = nx * u.x + ny * u.y + a;
            if nd < *d {
                *d = nd;
            }
        }
    }
}

/// `(cᵢ, uᵢ)` of `fix` relative to `anchor`: elapsed seconds and average
/// velocity. Callers guarantee `fix.t > anchor.t` (validated trajectories
/// and streams are strictly monotonic), so `c > 0`.
#[inline]
fn rel(anchor: &Fix, fix: &Fix) -> (f64, Vec2) {
    let c = fix.t.as_secs() - anchor.t.as_secs();
    (c, (fix.pos - anchor.pos) / c)
}

/// One step of the shared one-pass loop, used verbatim by both batch
/// kernels and [`crate::streaming::OnePassStream`] (which is what makes
/// streaming ≡ batch bit-identical).
///
/// `prev` is the most recently accepted point (a feasible segment end).
/// If `fix`'s average velocity lies in the region, `fix` becomes the new
/// candidate end and contributes its constraint; otherwise the segment
/// *closes at `prev`* — `prev` becomes the new anchor (the caller emits
/// it), the region restarts, and `fix` is re-processed against the fresh
/// anchor (trivially feasible, so every point is handled at most twice).
/// Returns `true` on a close.
#[inline]
pub(crate) fn one_pass_step<R: Region>(
    region: &mut R,
    epsilon: f64,
    anchor: &mut Fix,
    prev: &mut Fix,
    fix: Fix,
) -> bool {
    let (c, u) = rel(anchor, &fix);
    if region.contains(u) {
        // Feasible end point: record it, then constrain future ends by
        // its own disk (it is interior to any longer segment).
        region.add(u, epsilon / c);
        *prev = fix;
        false
    } else {
        *anchor = *prev;
        region.reset();
        let (c2, u2) = rel(anchor, &fix);
        region.add(u2, epsilon / c2);
        *prev = fix;
        true
    }
}

/// Shared batch driver: runs the one-pass loop over `traj` with the
/// given region, writing kept indices into `out`.
fn batch_kernel<R: Region>(
    region: &mut R,
    epsilon: f64,
    family: &'static str,
    traj: &Trajectory,
    out: &mut CompressionResultBuf,
) {
    let n = traj.len();
    if n <= 2 {
        out.set_identity(n);
        return;
    }
    let _span = traj_obs::span!("onepass.compress", points = n);
    let mut run = AlgoRun::new();
    let fixes = traj.fixes();
    out.reset(n);
    out.kept.push(0);
    let mut anchor = fixes[0];
    let mut prev = fixes[0];
    for (j, &fix) in fixes.iter().enumerate().skip(1) {
        run.sed_evals(1);
        run.op_check();
        if one_pass_step(region, epsilon, &mut anchor, &mut prev, fix) {
            run.op_close();
            out.kept.push(j - 1);
        }
    }
    // The open tail segment ends at the final point, which is always
    // kept (same countermeasure as the opening-window family) — and is a
    // *checked* feasible end here, so the bound stays strict.
    if out.kept.last() != Some(&(n - 1)) {
        out.kept.push(n - 1);
    }
    run.flush(family, n, out.kept.len());
}

pub(crate) fn validate_epsilon(epsilon: f64) {
    assert!(
        epsilon.is_finite() && epsilon >= 0.0,
        "one-pass epsilon must be finite and >= 0, got {epsilon}"
    );
}

/// **OP-FIT** — OPERB-style one-pass SED simplifier with a rectangular
/// fitting region.
///
/// `O(N)` time, O(1) state, and a *strict* bound: every point dropped
/// from an emitted segment has synchronized Euclidean distance ≤ the
/// declared `epsilon` against that segment (pinned by proptests).
///
/// ```
/// use traj_compress::{Compressor, OnePassFit, sed};
/// use traj_model::Trajectory;
///
/// let t = Trajectory::from_triples((0..100).map(|i| {
///     let s = f64::from(i) * 10.0;
///     (s, s * 12.0, f64::from(i % 7) * 8.0)
/// })).unwrap();
/// let r = OnePassFit::new(30.0).compress(&t);
/// assert!(r.kept_len() < t.len());
/// let f = t.fixes();
/// for w in r.kept().windows(2) {
///     for i in w[0] + 1..w[1] {
///         assert!(sed(&f[w[0]], &f[w[1]], &f[i]) <= 30.0 + 1e-9);
///     }
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePassFit {
    epsilon: f64,
}

impl OnePassFit {
    /// Creates an OP-FIT simplifier with a strict SED bound of
    /// `epsilon` metres.
    ///
    /// # Panics
    /// Panics on non-finite or negative `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        validate_epsilon(epsilon);
        OnePassFit { epsilon }
    }

    /// The declared SED bound, metres.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Compressor for OnePassFit {
    fn name(&self) -> String {
        format!("op-fit({}m)", self.epsilon)
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        self.compress_into(traj, &mut ws, &mut out);
        out.take()
    }

    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        ws.begin(traj.len());
        let mut region = FitRegion::new();
        batch_kernel(&mut region, self.epsilon, "op-fit", traj, out);
    }
}

/// Default direction count of [`OnePassCone`]: a 16-gon keeps ~98 % of
/// each disk's radius (`cos(π/16) ≈ 0.981`) at 16 floats of state.
pub const CONE_DIRECTIONS: usize = 16;

/// **OP-CONE** — CISED-style one-pass SED simplifier intersecting
/// inscribed regular `m`-gons.
///
/// Same strict bound and `O(N)` complexity as [`OnePassFit`]; the
/// polygonal region hugs the true disk intersection more closely
/// (apothem `cos(π/m)` vs the square's `1/√2`), so it typically closes
/// later and compresses more, at O(m) work per point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePassCone {
    epsilon: f64,
    directions: usize,
}

impl OnePassCone {
    /// Creates an OP-CONE simplifier with a strict SED bound of
    /// `epsilon` metres and the default [`CONE_DIRECTIONS`] directions.
    ///
    /// # Panics
    /// Panics on non-finite or negative `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        OnePassCone::with_directions(epsilon, CONE_DIRECTIONS)
    }

    /// Creates an OP-CONE simplifier with `m` polygon directions,
    /// clamped to `4..=64`. More directions → tighter region → better
    /// compression, at proportionally more work per point.
    ///
    /// # Panics
    /// Panics on non-finite or negative `epsilon`.
    pub fn with_directions(epsilon: f64, m: usize) -> Self {
        validate_epsilon(epsilon);
        OnePassCone { epsilon, directions: m.clamp(4, 64) }
    }

    /// The declared SED bound, metres.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The polygon direction count `m`.
    pub fn directions(&self) -> usize {
        self.directions
    }
}

impl Compressor for OnePassCone {
    fn name(&self) -> String {
        format!("op-cone({}m,{}d)", self.epsilon, self.directions)
    }

    fn compress(&self, traj: &Trajectory) -> CompressionResult {
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        self.compress_into(traj, &mut ws, &mut out);
        out.take()
    }

    fn compress_into(&self, traj: &Trajectory, ws: &mut Workspace, out: &mut CompressionResultBuf) {
        ws.begin(traj.len());
        cone_directions(self.directions, &mut ws.cone_dirs);
        ws.cone_off.clear();
        ws.cone_off.resize(self.directions, f64::INFINITY);
        let mut region = ConeRegion {
            dirs: &ws.cone_dirs,
            off: &mut ws.cone_off,
            apothem: cone_apothem(self.directions),
        };
        batch_kernel(&mut region, self.epsilon, "op-cone", traj, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::sed;

    fn zigzag() -> Trajectory {
        let mut triples = Vec::new();
        let mut t = 0.0;
        let (mut x, mut y) = (0.0, 0.0);
        for leg in 0..4 {
            for _ in 0..5 {
                triples.push((t, x, y));
                t += 10.0;
                if leg % 2 == 0 {
                    x += 100.0;
                } else {
                    y += 100.0;
                }
            }
        }
        triples.push((t, x, y));
        Trajectory::from_triples(triples).unwrap()
    }

    fn all() -> Vec<Box<dyn Compressor>> {
        vec![Box::new(OnePassFit::new(25.0)), Box::new(OnePassCone::new(25.0))]
    }

    #[test]
    fn straight_constant_speed_collapses_to_endpoints() {
        let t = Trajectory::from_triples((0..50).map(|i| (i as f64 * 10.0, i as f64 * 80.0, 0.0)))
            .unwrap();
        for c in all() {
            let r = c.compress(&t);
            assert_eq!(r.kept(), &[0, 49], "{}", c.name());
        }
    }

    #[test]
    fn strict_sed_bound_on_zigzag() {
        let t = zigzag();
        let f = t.fixes();
        for c in all() {
            let r = c.compress(&t);
            assert!(r.kept_len() < t.len(), "{} should compress", c.name());
            for w in r.kept().windows(2) {
                for i in w[0] + 1..w[1] {
                    let d = sed(&f[w[0]], &f[w[1]], &f[i]);
                    assert!(d <= 25.0 + 1e-9, "{}: point {i} deviates {d}", c.name());
                }
            }
        }
    }

    #[test]
    fn epsilon_zero_is_sound() {
        // eps = 0 shrinks every region to (at most) a point; collinear
        // constant-velocity runs still compress, nothing violates.
        let t = Trajectory::from_triples((0..20).map(|i| (i as f64, i as f64 * 5.0, 0.0)))
            .unwrap();
        for c in [
            Box::new(OnePassFit::new(0.0)) as Box<dyn Compressor>,
            Box::new(OnePassCone::new(0.0)),
        ] {
            let r = c.compress(&t);
            assert_eq!(r.kept(), &[0, 19], "{}", c.name());
        }
    }

    #[test]
    fn degenerate_inputs_are_identity() {
        let one = Trajectory::from_triples([(0.0, 1.0, 2.0)]).unwrap();
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (5.0, 9.0, 9.0)]).unwrap();
        for c in all() {
            assert_eq!(c.compress(&one).kept_len(), 1, "{}", c.name());
            assert_eq!(c.compress(&two).kept_len(), 2, "{}", c.name());
        }
    }

    #[test]
    fn compress_into_matches_compress_with_dirty_workspace() {
        let t = zigzag();
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        for c in all() {
            // Dirty the cone buffers deliberately between runs.
            ws.cone_off.push(-42.0);
            c.compress_into(&t, &mut ws, &mut out);
            assert_eq!(out.take(), c.compress(&t), "{}", c.name());
        }
    }

    #[test]
    fn cone_with_more_directions_never_loosens_the_bound() {
        let t = zigzag();
        let f = t.fixes();
        for m in [4, 8, 16, 32, 64] {
            let r = OnePassCone::with_directions(25.0, m).compress(&t);
            for w in r.kept().windows(2) {
                for i in w[0] + 1..w[1] {
                    assert!(sed(&f[w[0]], &f[w[1]], &f[i]) <= 25.0 + 1e-9, "m={m}");
                }
            }
        }
    }

    #[test]
    fn direction_count_is_clamped() {
        assert_eq!(OnePassCone::with_directions(10.0, 1).directions(), 4);
        assert_eq!(OnePassCone::with_directions(10.0, 1000).directions(), 64);
        assert_eq!(OnePassCone::new(10.0).directions(), CONE_DIRECTIONS);
    }

    #[test]
    fn names() {
        assert_eq!(OnePassFit::new(30.0).name(), "op-fit(30m)");
        assert_eq!(OnePassCone::new(30.0).name(), "op-cone(30m,16d)");
        assert_eq!(OnePassCone::with_directions(30.0, 8).name(), "op-cone(30m,8d)");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_nan_threshold() {
        let _ = OnePassFit::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn cone_rejects_negative_threshold() {
        let _ = OnePassCone::new(-1.0);
    }

    #[test]
    fn inscribed_square_is_inside_the_disk() {
        // The soundness argument rests on inscribed ⊆ disk: a square
        // corner sits at exactly radius r from the centre.
        let mut reg = FitRegion::new();
        reg.add(Vec2::new(0.0, 0.0), 1.0);
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert!(reg.contains(Vec2::new(h - 1e-12, h - 1e-12)));
        assert!(!reg.contains(Vec2::new(h + 1e-12, 0.0)));
        // Corner exactly on the circle.
        assert!((Vec2::new(h, h).norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inscribed_polygon_vertices_touch_the_circle() {
        let m = 16;
        let mut dirs = Vec::new();
        cone_directions(m, &mut dirs);
        let mut off = vec![f64::INFINITY; m];
        let mut reg = ConeRegion { dirs: &dirs, off: &mut off, apothem: cone_apothem(m) };
        reg.add(Vec2::new(0.0, 0.0), 1.0);
        // Apothem direction: boundary at cos(π/m) < 1.
        let a = cone_apothem(m);
        assert!(reg.contains(Vec2::new(a - 1e-12, 0.0)));
        assert!(!reg.contains(Vec2::new(a + 1e-12, 0.0)));
        // Vertex direction (between two normals): boundary at radius 1.
        let th = std::f64::consts::PI / m as f64;
        let v = Vec2::new(th.cos(), th.sin());
        assert!(reg.contains(v * (1.0 - 1e-9)));
        assert!(!reg.contains(v * (1.0 + 1e-9)));
    }
}
