//! Property pins for the structure-of-arrays refactor (PR 9).
//!
//! Every kernel that now scans a [`TrajColumns`] view is held
//! **bit-identical** to the pre-refactor array-of-structs path. The
//! scalar side of each pin is either the still-compiled scalar trait
//! method (`split_value` / `first_violation` — unchanged since before
//! the refactor) or a verbatim test-local replica of the old kernel
//! driving those methods. Comparisons are `prop_assert_eq!` on kept
//! indices and on raw `f64`s — no tolerances anywhere.
//!
//! Compiled both with and without `--features simd` in CI: with the
//! feature on, these same pins hold the unrolled 4-lane kernels to the
//! scalar reference end-to-end across every catalog algorithm.

#![recursion_limit = "1024"]

use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use traj_compress::{
    BottomUp, CompressionResultBuf, Compressor, Criterion, DeadReckoning, DistanceThreshold,
    DouglasPeucker, HullDouglasPeucker, OnePassCone, OnePassFit, OpeningWindow, SegmentCriterion,
    SlidingWindow, TdSp, TdTr, UniformSample, Workspace,
};
use traj_model::{TrajColumns, Trajectory};

/// Random car-ish trajectory: 2..=80 fixes, bounded steps.
fn trajectory() -> impl Strategy<Value = Trajectory> {
    (
        proptest::collection::vec((1.0..30.0f64, -200.0..200.0f64, -200.0..200.0f64), 1..80),
        (-1000.0..1000.0f64, -1000.0..1000.0f64),
    )
        .prop_map(|(steps, (x0, y0))| {
            let mut t = 0.0;
            let (mut x, mut y) = (x0, y0);
            let mut triples = vec![(t, x, y)];
            for (dt, dx, dy) in steps {
                t += dt;
                x += dx;
                y += dy;
                triples.push((t, x, y));
            }
            Trajectory::from_triples(triples).expect("valid by construction")
        })
}

/// The full 15-algorithm catalog (mirrors `traj-eval`'s registry, which
/// cannot be imported here without a dev-dependency cycle).
fn catalog(eps: f64, veps: f64) -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(UniformSample::new(eps.round().max(1.0) as usize)),
        Box::new(DistanceThreshold::new(eps)),
        Box::new(DouglasPeucker::new(eps)),
        Box::new(HullDouglasPeucker::new(eps)),
        Box::new(TdTr::new(eps)),
        Box::new(TdSp::new(eps, veps)),
        Box::new(OpeningWindow::nopw(eps)),
        Box::new(OpeningWindow::bopw(eps)),
        Box::new(OpeningWindow::opw_tr(eps)),
        Box::new(OpeningWindow::opw_sp(eps, veps)),
        Box::new(DeadReckoning::new(eps)),
        Box::new(BottomUp::time_ratio(eps)),
        Box::new(SlidingWindow::time_ratio(eps, 32)),
        Box::new(OnePassFit::new(eps)),
        Box::new(OnePassCone::new(eps)),
    ]
}

/// The three segment criteria at the same thresholds.
fn criteria(eps: f64, veps: f64) -> [Criterion; 3] {
    [
        Criterion::Perpendicular { epsilon: eps },
        Criterion::TimeRatio { epsilon: eps },
        Criterion::TimeRatioSpeed { epsilon: eps, speed_epsilon: veps },
    ]
}

/// Pre-refactor farthest scan: first-argmax over per-index
/// `split_value`, exactly as `TopDown::farthest` still computes it.
fn scalar_scan(c: &Criterion, t: &Trajectory, lo: usize, hi: usize) -> (usize, f64) {
    let fixes = t.fixes();
    let mut best = (lo + 1, f64::NEG_INFINITY);
    for i in lo + 1..hi {
        let d = c.split_value(fixes, lo, hi, i);
        if d > best.1 {
            best = (i, d);
        }
    }
    best
}

/// Pre-refactor opening-window kernel, verbatim, driven by the scalar
/// `first_violation` (which has not changed since before the refactor).
fn scalar_opening_window(ow: &OpeningWindow, t: &Trajectory) -> Vec<usize> {
    use traj_compress::BreakStrategy;
    let fixes = t.fixes();
    let n = fixes.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut kept = vec![0];
    let mut anchor = 0usize;
    let mut float = 2usize;
    while float < n {
        match ow.criterion().first_violation(fixes, anchor, float) {
            Some(i) => {
                let cut = match ow.strategy() {
                    BreakStrategy::Normal => i,
                    BreakStrategy::BeforeFloat => float - 1,
                };
                kept.push(cut);
                anchor = cut;
                float = anchor + 2;
            }
            None => float += 1,
        }
    }
    if kept.last() != Some(&(n - 1)) {
        kept.push(n - 1);
    }
    kept
}

/// Pre-refactor sliding-window kernel, verbatim.
fn scalar_sliding_window(sw: &SlidingWindow, t: &Trajectory) -> Vec<usize> {
    let fixes = t.fixes();
    let n = fixes.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut kept = vec![0];
    let mut anchor = 0usize;
    while anchor < n - 1 {
        let limit = (anchor + sw.window()).min(n - 1);
        let mut float = anchor + 1;
        for cand in anchor + 2..=limit {
            if sw.criterion().first_violation(fixes, anchor, cand).is_some() {
                break;
            }
            float = cand;
        }
        kept.push(float);
        anchor = float;
    }
    kept
}

/// Min-heap candidate with the production `MergeCand` ordering: by cost
/// only, ties `Equal` — so a heap fed the same insertion sequence pops
/// in the same order.
#[derive(Clone, Copy)]
struct Cand {
    cost: f64,
    idx: usize,
    left: usize,
    right: usize,
}
impl PartialEq for Cand {
    fn eq(&self, o: &Self) -> bool {
        self.cost == o.cost
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Cand {
    fn cmp(&self, o: &Self) -> Ordering {
        o.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
    }
}

/// Pre-refactor bottom-up kernel, verbatim: scalar 0.0-seeded max fold
/// over `split_value` for each merge cost, same lazy-invalidated heap.
fn scalar_bottom_up(bu: &BottomUp, t: &Trajectory) -> Vec<usize> {
    let fixes = t.fixes();
    let n = fixes.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let c = bu.criterion();
    let merge_cost = |left: usize, right: usize| -> f64 {
        let mut worst = 0.0f64;
        for i in left + 1..right {
            worst = worst.max(c.split_value(fixes, left, right, i));
        }
        worst
    };
    let threshold = c.split_threshold();
    let mut prev: Vec<usize> = (0..n).map(|i| i.wrapping_sub(1)).collect();
    let mut next: Vec<usize> = (1..=n).collect();
    let mut keep = vec![true; n];
    let mut heap = BinaryHeap::new();
    for i in 1..n - 1 {
        heap.push(Cand { cost: merge_cost(i - 1, i + 1), idx: i, left: i - 1, right: i + 1 });
    }
    while let Some(cand) = heap.pop() {
        if !keep[cand.idx] || prev[cand.idx] != cand.left || next[cand.idx] != cand.right {
            continue;
        }
        if cand.cost > threshold {
            break;
        }
        keep[cand.idx] = false;
        next[cand.left] = cand.right;
        prev[cand.right] = cand.left;
        if cand.left > 0 {
            let (l, r) = (prev[cand.left], next[cand.left]);
            heap.push(Cand { cost: merge_cost(l, r), idx: cand.left, left: l, right: r });
        }
        if cand.right < n - 1 {
            let (l, r) = (prev[cand.right], next[cand.right]);
            heap.push(Cand { cost: merge_cost(l, r), idx: cand.right, left: l, right: r });
        }
    }
    (0..n).filter(|&i| keep[i]).collect()
}

proptest! {
    /// `scan_segment` == the scalar first-argmax loop, split index and
    /// split value both, for all three criteria over arbitrary
    /// sub-segments. Covers the batched SED and perpendicular kernels
    /// (and their unrolled variants when `simd` is on).
    #[test]
    fn scan_segment_matches_scalar_argmax(
        t in trajectory(),
        eps in 0.0..200.0f64,
        veps in 0.5..30.0f64,
        a in any::<proptest::sample::Index>(),
        b in any::<proptest::sample::Index>(),
    ) {
        let n = t.len();
        prop_assume!(n >= 3);
        let (mut lo, mut hi) = (a.index(n), b.index(n));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        prop_assume!(lo + 1 < hi);
        let cols = TrajColumns::from_fixes(t.fixes());
        for c in criteria(eps, veps) {
            let d = c.scan_segment(cols.view(), lo, hi);
            let (si, sv) = scalar_scan(&c, &t, lo, hi);
            prop_assert_eq!(d.split, si, "{}", c.label());
            prop_assert_eq!(d.value.to_bits(), sv.to_bits(), "{}", c.label());
        }
    }

    /// `first_violation_view` == the scalar `first_violation` default
    /// method, including the `None` cases, for all three criteria.
    #[test]
    fn first_violation_view_matches_scalar(
        t in trajectory(),
        eps in 0.0..200.0f64,
        veps in 0.5..30.0f64,
        a in any::<proptest::sample::Index>(),
        b in any::<proptest::sample::Index>(),
    ) {
        let n = t.len();
        prop_assume!(n >= 3);
        let (mut anchor, mut float) = (a.index(n), b.index(n));
        if anchor > float {
            std::mem::swap(&mut anchor, &mut float);
        }
        prop_assume!(anchor + 1 < float);
        let cols = TrajColumns::from_fixes(t.fixes());
        for c in criteria(eps, veps) {
            prop_assert_eq!(
                c.first_violation_view(cols.view(), anchor, float),
                c.first_violation(t.fixes(), anchor, float),
                "{}", c.label()
            );
        }
    }

    /// The columnar iterative top-down kernel == the scalar recursive
    /// path (which still runs per-`Fix` `split_value`), for all three
    /// top-down algorithms.
    #[test]
    fn top_down_matches_scalar_recursive(
        t in trajectory(),
        eps in 0.0..200.0f64,
        veps in 0.5..30.0f64,
    ) {
        let ndp = DouglasPeucker::new(eps);
        prop_assert_eq!(ndp.compress(&t), ndp.inner().compress_recursive(&t));
        let tdtr = TdTr::new(eps);
        prop_assert_eq!(tdtr.compress(&t), tdtr.inner().compress_recursive(&t));
        let tdsp = TdSp::new(eps, veps);
        prop_assert_eq!(tdsp.compress(&t), tdsp.inner().compress_recursive(&t));
    }

    /// The hull-accelerated splitter (columnar) == scalar recursive NDP.
    #[test]
    fn hull_dp_matches_scalar_recursive_ndp(t in trajectory(), eps in 0.0..200.0f64) {
        prop_assert_eq!(
            HullDouglasPeucker::new(eps).compress(&t),
            DouglasPeucker::new(eps).inner().compress_recursive(&t)
        );
    }

}

proptest! {
    /// The columnar opening-window kernel == the pre-refactor scalar
    /// window loop, for all four OW catalog variants.
    #[test]
    fn opening_window_matches_scalar_loop(
        t in trajectory(),
        eps in 0.0..200.0f64,
        veps in 0.5..30.0f64,
    ) {
        for ow in [
            OpeningWindow::nopw(eps),
            OpeningWindow::bopw(eps),
            OpeningWindow::opw_tr(eps),
            OpeningWindow::opw_sp(eps, veps),
        ] {
            let got = ow.compress(&t);
            let want = scalar_opening_window(&ow, &t);
            prop_assert_eq!(got.kept(), want.as_slice(), "{}", ow.name());
        }
    }

    /// The columnar sliding-window kernel == the pre-refactor scalar
    /// loop, across window sizes.
    #[test]
    fn sliding_window_matches_scalar_loop(
        t in trajectory(),
        eps in 0.0..200.0f64,
        w in 2..48usize,
    ) {
        for sw in [SlidingWindow::time_ratio(eps, w), SlidingWindow::perpendicular(eps, w)] {
            let got = sw.compress(&t);
            let want = scalar_sliding_window(&sw, &t);
            prop_assert_eq!(got.kept(), want.as_slice(), "{}", sw.name());
        }
    }

    /// The columnar bottom-up kernel == the pre-refactor scalar merge
    /// loop. Merge costs must match bitwise for the heaps to pop in the
    /// same order, so this pins `max_split_value_view` end-to-end.
    #[test]
    fn bottom_up_matches_scalar_merge_loop(
        t in trajectory(),
        eps in 0.0..200.0f64,
    ) {
        for bu in [BottomUp::time_ratio(eps), BottomUp::perpendicular(eps)] {
            let got = bu.compress(&t);
            let want = scalar_bottom_up(&bu, &t);
            prop_assert_eq!(got.kept(), want.as_slice(), "{}", bu.name());
        }
    }

}

proptest! {
    /// One warm workspace reused across every algorithm and a stream of
    /// different trajectories gives the same answer as a fresh
    /// compress. Owned trajectories are dropped as the loop advances, so
    /// the allocator may hand a later trajectory a recycled buffer at
    /// the same address — the column cache must rebuild, not alias.
    #[test]
    fn warm_workspace_reuse_matches_fresh(
        ts in proptest::collection::vec(trajectory(), 1..4),
        eps in 0.0..200.0f64,
        veps in 0.5..30.0f64,
    ) {
        let mut ws = Workspace::new();
        let mut buf = CompressionResultBuf::new();
        for c in catalog(eps, veps) {
            for t in ts.clone() {
                c.compress_into(&t, &mut ws, &mut buf);
                prop_assert_eq!(buf.take(), c.compress(&t), "{}", c.name());
            }
        }
    }

    /// Degenerate one- and two-fix trajectories pass through every
    /// algorithm as identity, on both the fresh and warm paths.
    #[test]
    fn degenerate_trajectories_are_identity(
        eps in 0.0..200.0f64,
        veps in 0.5..30.0f64,
        t0 in 0.0..100.0f64,
        x0 in -50.0..50.0f64,
        y0 in -50.0..50.0f64,
        dt in 0.5..100.0f64,
        x1 in -50.0..50.0f64,
        y1 in -50.0..50.0f64,
    ) {
        let one = Trajectory::from_triples([(t0, x0, y0)]).unwrap();
        let two = Trajectory::from_triples([(t0, x0, y0), (t0 + dt, x1, y1)]).unwrap();
        let mut ws = Workspace::new();
        let mut buf = CompressionResultBuf::new();
        for c in catalog(eps, veps) {
            for (t, n) in [(&one, 1usize), (&two, 2usize)] {
                let fresh = c.compress(t);
                let identity: Vec<usize> = (0..n).collect();
                prop_assert_eq!(fresh.kept(), identity.as_slice(), "{}", c.name());
                c.compress_into(t, &mut ws, &mut buf);
                prop_assert_eq!(buf.take(), fresh, "{}", c.name());
            }
        }
    }

    /// Duplicate (and backwards) timestamps are rejected at
    /// construction, wherever the duplicate lands — the column cache can
    /// therefore rely on strict monotonicity.
    #[test]
    fn duplicate_timestamps_rejected(t in trajectory(), at in any::<proptest::sample::Index>()) {
        let i = at.index(t.len());
        let mut triples: Vec<(f64, f64, f64)> =
            t.fixes().iter().map(|f| (f.t.as_secs(), f.pos.x, f.pos.y)).collect();
        let dup = triples[i];
        triples.insert(i, dup);
        prop_assert!(Trajectory::from_triples(triples).is_err());
    }
}
