//! Property-based pins for the one-pass evaluation engine.
//!
//! The engine's contract is **exact** agreement with the reference
//! `evaluate()` — same operands, same summation order — so every field
//! comparison here is `prop_assert_eq!`, not a tolerance check. The only
//! tolerance appears against the independent adaptive-quadrature α,
//! which is an approximation by construction.

use proptest::prelude::*;
use traj_compress::error::average_synchronous_error_numeric;
use traj_compress::{
    evaluate, evaluate_sweep, evaluate_with, CompressionResult, Compressor, ErrorEval,
    EvalWorkspace, OpeningWindow, TdSp, TdTr, TopDown, Workspace,
};
use traj_model::Trajectory;

/// Random car-ish trajectory: 4..=80 fixes, bounded steps.
fn trajectory() -> impl Strategy<Value = Trajectory> {
    (
        proptest::collection::vec((1.0..30.0f64, -200.0..200.0f64, -200.0..200.0f64), 3..80),
        (-1000.0..1000.0f64, -1000.0..1000.0f64),
    )
        .prop_map(|(steps, (x0, y0))| {
            let mut t = 0.0;
            let (mut x, mut y) = (x0, y0);
            let mut triples = vec![(t, x, y)];
            for (dt, dx, dy) in steps {
                t += dt;
                x += dx;
                y += dy;
                triples.push((t, x, y));
            }
            Trajectory::from_triples(triples).expect("valid by construction")
        })
}

/// An arbitrary valid compression result for a trajectory of `n` fixes:
/// endpoints always kept, interior points kept per the random mask.
fn random_result(mask: &[bool], n: usize) -> CompressionResult {
    let mut kept = vec![0];
    kept.extend((1..n - 1).filter(|&i| mask[i % mask.len()]));
    kept.push(n - 1);
    CompressionResult::new(kept, n)
}

proptest! {
    /// Engine == reference, field by field, exactly — on results from
    /// real compressors of every family.
    #[test]
    fn engine_equals_reference_for_compressors(t in trajectory(), eps in 0.0..200.0f64, veps in 0.5..30.0f64) {
        let compressors: [Box<dyn Compressor>; 4] = [
            Box::new(TdTr::new(eps)),
            Box::new(TdSp::new(eps, veps)),
            Box::new(OpeningWindow::opw_tr(eps)),
            Box::new(OpeningWindow::nopw(eps)),
        ];
        let mut ws = EvalWorkspace::new();
        for c in compressors {
            let r = c.compress(&t);
            prop_assert_eq!(evaluate_with(&t, &r, &mut ws), evaluate(&t, &r), "{}", c.name());
        }
    }

    /// Engine == reference on *arbitrary* kept subsets, not just ones a
    /// real algorithm would produce.
    #[test]
    fn engine_equals_reference_for_random_subsets(
        t in trajectory(),
        mask in proptest::collection::vec(any::<bool>(), 1..32),
    ) {
        let r = random_result(&mask, t.len());
        let mut ws = EvalWorkspace::new();
        prop_assert_eq!(evaluate_with(&t, &r, &mut ws), evaluate(&t, &r));
    }

    /// The engine's closed-form α agrees with the independent adaptive
    /// Simpson quadrature within tolerance.
    #[test]
    fn engine_alpha_matches_numeric_quadrature(t in trajectory(), eps in 1.0..150.0f64) {
        let r = TdTr::new(eps).compress(&t);
        let mut ws = EvalWorkspace::new();
        let engine = evaluate_with(&t, &r, &mut ws).avg_sync_err_m;
        let numeric = average_synchronous_error_numeric(&t, &r.apply(&t), 1e-9);
        prop_assert!(
            (engine - numeric).abs() <= 1e-5 + 1e-6 * engine.abs(),
            "engine={engine} numeric={numeric}"
        );
    }

    /// The memoized sweep path == per-cell evaluation, exactly, for
    /// arbitrary grids (shared anchor segments must not perturb a single
    /// bit).
    #[test]
    fn sweep_equals_per_cell(
        t in trajectory(),
        grid in proptest::collection::vec(0.0..250.0f64, 1..8),
    ) {
        let td = TopDown::time_ratio(0.0);
        let mut cws = Workspace::new();
        let results = td.sweep_with(&t, &grid, &mut cws);
        let mut ws = EvalWorkspace::new();
        let swept = evaluate_sweep(&t, &results, &mut ws);
        prop_assert_eq!(swept.len(), results.len());
        for (e, r) in swept.iter().zip(&results) {
            prop_assert_eq!(*e, evaluate(&t, r));
        }
    }

    /// A single dirty workspace reused across trajectories and result
    /// mixes never bleeds state: every evaluation matches a fresh one.
    #[test]
    fn workspace_reuse_is_stateless(
        ts in proptest::collection::vec(trajectory(), 1..4),
        eps in 1.0..150.0f64,
    ) {
        let mut shared = EvalWorkspace::new();
        for t in &ts {
            let mut ev = ErrorEval::new(t, &mut shared);
            for e in [eps, eps * 2.0, eps] {
                let r = TdTr::new(e).compress(t);
                prop_assert_eq!(ev.evaluate(&r), evaluate(t, &r));
            }
        }
    }
}
