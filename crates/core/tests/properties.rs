//! Property-based tests for the compression algorithms and error
//! calculus.

use proptest::prelude::*;
use traj_compress::error::{
    average_synchronous_error, average_synchronous_error_numeric, max_synchronous_error,
    sed_at_samples,
};
use traj_compress::streaming::{OnePassStream, OwStream, StreamingCompressor};
use traj_compress::{
    sed, spt, BottomUp, BreakStrategy, CompressionResultBuf, Compressor, Criterion,
    DouglasPeucker, HullDouglasPeucker, OnePassCone, OnePassFit, OpeningWindow,
    SegmentCriterion, SlidingWindow, TdSp, TdTr, TopDown, UniformSample, Workspace,
};
use traj_model::{Fix, Trajectory};

/// Random car-ish trajectory: 4..=80 fixes, bounded steps.
fn trajectory() -> impl Strategy<Value = Trajectory> {
    (
        proptest::collection::vec(
            (1.0..30.0f64, -200.0..200.0f64, -200.0..200.0f64),
            3..80,
        ),
        (-1000.0..1000.0f64, -1000.0..1000.0f64),
    )
        .prop_map(|(steps, (x0, y0))| {
            let mut t = 0.0;
            let (mut x, mut y) = (x0, y0);
            let mut triples = vec![(t, x, y)];
            for (dt, dx, dy) in steps {
                t += dt;
                x += dx;
                y += dy;
                triples.push((t, x, y));
            }
            Trajectory::from_triples(triples).expect("valid by construction")
        })
}

fn all_compressors(eps: f64, veps: f64) -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(UniformSample::new(3)),
        Box::new(traj_compress::DistanceThreshold::new(eps)),
        Box::new(DouglasPeucker::new(eps)),
        Box::new(TdTr::new(eps)),
        Box::new(TdSp::new(eps, veps)),
        Box::new(OpeningWindow::nopw(eps)),
        Box::new(OpeningWindow::bopw(eps)),
        Box::new(OpeningWindow::opw_tr(eps)),
        Box::new(OpeningWindow::opw_sp(eps, veps)),
        Box::new(BottomUp::time_ratio(eps)),
        Box::new(BottomUp::perpendicular(eps)),
        Box::new(SlidingWindow::time_ratio(eps, 12)),
        Box::new(HullDouglasPeucker::new(eps)),
        Box::new(OnePassFit::new(eps)),
        Box::new(OnePassCone::new(eps)),
    ]
}

proptest! {
    /// Every compressor upholds the CompressionResult invariants on
    /// arbitrary valid inputs (first/last kept, strictly increasing) —
    /// the constructor would panic otherwise, so surviving compression
    /// plus the explicit checks here is the property.
    #[test]
    fn compressors_uphold_result_invariants(t in trajectory(), eps in 0.0..200.0f64, veps in 0.5..30.0f64) {
        for c in all_compressors(eps, veps) {
            let r = c.compress(&t);
            prop_assert_eq!(r.original_len(), t.len());
            prop_assert_eq!(r.kept()[0], 0, "{}", c.name());
            prop_assert_eq!(*r.kept().last().unwrap(), t.len() - 1, "{}", c.name());
            prop_assert!(r.kept_len() <= t.len());
        }
    }

    /// Top-down algorithms guarantee every removed point is within eps of
    /// its covering segment under their own metric.
    #[test]
    fn top_down_epsilon_postcondition(t in trajectory(), eps in 1.0..150.0f64) {
        for criterion in [
            Criterion::Perpendicular { epsilon: eps },
            Criterion::TimeRatio { epsilon: eps },
        ] {
            let r = TopDown::new(criterion).compress(&t);
            let f = t.fixes();
            for w in r.kept().windows(2) {
                for i in w[0] + 1..w[1] {
                    let d = criterion.split_value(f, w[0], w[1], i);
                    prop_assert!(d <= eps + 1e-9, "{criterion:?} point {i}: {d} > {eps}");
                }
            }
        }
    }

    /// Opening-window (Normal strategy) postcondition: interior points of
    /// every emitted segment satisfy the SED bound (they were all checked
    /// while the window was open).
    #[test]
    fn opw_tr_interior_postcondition(t in trajectory(), eps in 1.0..150.0f64) {
        let r = OpeningWindow::opw_tr(eps).compress(&t);
        let f = t.fixes();
        for w in r.kept().windows(2) {
            for i in w[0] + 1..w[1] {
                prop_assert!(sed(&f[w[0]], &f[w[1]], &f[i]) <= eps + 1e-9);
            }
        }
    }

    /// The SPT recursion (paper pseudocode) and the production OPW-SP
    /// engine agree exactly.
    #[test]
    fn spt_spec_equals_opw_sp(t in trajectory(), eps in 1.0..150.0f64, veps in 0.5..30.0f64) {
        let spec = spt(&t, eps, veps);
        let prod = OpeningWindow::opw_sp(eps, veps).compress(&t);
        prop_assert_eq!(spec.kept(), prod.kept());
    }

    /// The streaming engine replays the batch engine exactly, for every
    /// criterion/strategy pair.
    #[test]
    fn streaming_equals_batch(t in trajectory(), eps in 1.0..150.0f64, veps in 0.5..30.0f64) {
        let cases = [
            (Criterion::Perpendicular { epsilon: eps }, BreakStrategy::Normal),
            (Criterion::Perpendicular { epsilon: eps }, BreakStrategy::BeforeFloat),
            (Criterion::TimeRatio { epsilon: eps }, BreakStrategy::Normal),
            (Criterion::TimeRatioSpeed { epsilon: eps, speed_epsilon: veps }, BreakStrategy::Normal),
        ];
        for (criterion, strategy) in cases {
            let batch = OpeningWindow::new(criterion, strategy).compress(&t);
            let expected: Vec<Fix> = batch.kept().iter().map(|&i| t.fixes()[i]).collect();
            let mut stream = OwStream::new(criterion, strategy);
            let mut got = Vec::new();
            for f in t.fixes() {
                got.extend(stream.push(*f).unwrap());
            }
            got.extend(stream.finish());
            prop_assert_eq!(&got, &expected, "criterion {:?}", criterion);
        }
    }

    /// Fault injection: a stream fed out-of-order and non-finite fixes
    /// rejects exactly the invalid ones and produces, over the accepted
    /// subsequence, the same output as the batch algorithm on that
    /// subsequence.
    #[test]
    fn streaming_survives_dirty_input(
        raw in proptest::collection::vec(
            (0.0..5000.0f64, -500.0..500.0f64, -500.0..500.0f64, 0u8..10),
            4..80,
        ),
        eps in 5.0..100.0f64,
    ) {
        let mut stream = OwStream::opw_tr(eps);
        let mut accepted: Vec<Fix> = Vec::new();
        let mut got: Vec<Fix> = Vec::new();
        for (t, x, y, poison) in raw {
            // Occasionally corrupt the fix.
            let fix = match poison {
                0 => Fix::from_parts(f64::NAN, x, y),
                1 => Fix::from_parts(t, f64::INFINITY, y),
                _ => Fix::from_parts(t, x, y),
            };
            match stream.push(fix) {
                Ok(emitted) => {
                    accepted.push(fix);
                    got.extend(emitted);
                }
                Err(_) => {
                    // Must be an actual violation: non-finite or not
                    // strictly later than the last accepted fix.
                    let later = accepted.last().is_none_or(|l| l.t < fix.t);
                    prop_assert!(!fix.is_finite() || !later, "spurious rejection of {fix:?}");
                }
            }
        }
        got.extend(stream.finish());
        prop_assume!(accepted.len() >= 2);
        let clean = Trajectory::new(accepted).expect("accepted fixes are valid");
        let batch = OpeningWindow::opw_tr(eps).compress(&clean);
        let expected: Vec<Fix> = batch.kept().iter().map(|&i| clean.fixes()[i]).collect();
        prop_assert_eq!(got, expected);
    }

    /// One-pass family soundness: every point dropped from an emitted
    /// segment satisfies the *declared* SED bound against that segment —
    /// the bound is strict, not heuristic (the fitting regions are
    /// inscribed subsets of the exact feasibility disks).
    #[test]
    fn one_pass_strict_sed_bound(t in trajectory(), eps in 0.0..200.0f64, m in 4usize..64) {
        let compressors: Vec<Box<dyn Compressor>> = vec![
            Box::new(OnePassFit::new(eps)),
            Box::new(OnePassCone::new(eps)),
            Box::new(OnePassCone::with_directions(eps, m)),
        ];
        let f = t.fixes();
        for c in compressors {
            let r = c.compress(&t);
            for w in r.kept().windows(2) {
                for i in w[0] + 1..w[1] {
                    let d = sed(&f[w[0]], &f[w[1]], &f[i]);
                    prop_assert!(d <= eps + 1e-9, "{}: point {} deviates {} > {}", c.name(), i, d, eps);
                }
            }
        }
    }

    /// `OnePassStream` fed fix-by-fix is bit-identical to the batch
    /// kernel, for both region variants.
    #[test]
    fn one_pass_streaming_equals_batch(t in trajectory(), eps in 0.0..200.0f64, m in 4usize..64) {
        let cases: Vec<(OnePassStream, Box<dyn Compressor>)> = vec![
            (OnePassStream::fit(eps), Box::new(OnePassFit::new(eps))),
            (OnePassStream::cone(eps), Box::new(OnePassCone::new(eps))),
            (
                OnePassStream::cone_with(eps, m),
                Box::new(OnePassCone::with_directions(eps, m)),
            ),
        ];
        for (mut stream, batch) in cases {
            let expected: Vec<Fix> =
                batch.compress(&t).kept().iter().map(|&i| t.fixes()[i]).collect();
            let mut got = Vec::new();
            for f in t.fixes() {
                got.extend(stream.push(*f).unwrap());
            }
            got.extend(stream.finish());
            prop_assert_eq!(&got, &expected, "{}", batch.name());
        }
    }

    /// Fault injection for the one-pass stream: out-of-order,
    /// *duplicate-timestamp*, and non-finite fixes are rejected exactly,
    /// and the accepted subsequence matches the batch kernel on the
    /// cleaned trajectory.
    #[test]
    fn one_pass_streaming_survives_dirty_input(
        raw in proptest::collection::vec(
            (0.0..5000.0f64, -500.0..500.0f64, -500.0..500.0f64, 0u8..12),
            4..80,
        ),
        eps in 5.0..100.0f64,
    ) {
        let mut stream = OnePassStream::cone(eps);
        let mut accepted: Vec<Fix> = Vec::new();
        let mut got: Vec<Fix> = Vec::new();
        for (t, x, y, poison) in raw {
            let fix = match poison {
                0 => Fix::from_parts(f64::NAN, x, y),
                1 => Fix::from_parts(t, f64::INFINITY, y),
                // Duplicate timestamp: exactly the last accepted instant.
                2 => match accepted.last() {
                    Some(l) => Fix::from_parts(l.t.as_secs(), x, y),
                    None => Fix::from_parts(t, x, y),
                },
                _ => Fix::from_parts(t, x, y),
            };
            match stream.push(fix) {
                Ok(emitted) => {
                    accepted.push(fix);
                    got.extend(emitted);
                }
                Err(_) => {
                    let later = accepted.last().is_none_or(|l| l.t < fix.t);
                    prop_assert!(!fix.is_finite() || !later, "spurious rejection of {fix:?}");
                }
            }
        }
        got.extend(stream.finish());
        prop_assume!(accepted.len() >= 2);
        let clean = Trajectory::new(accepted).expect("accepted fixes are valid");
        let batch = OnePassCone::new(eps).compress(&clean);
        let expected: Vec<Fix> = batch.kept().iter().map(|&i| clean.fixes()[i]).collect();
        prop_assert_eq!(got, expected);
    }

    /// DP iterative == DP recursive on arbitrary input.
    #[test]
    fn dp_engines_agree(t in trajectory(), eps in 0.0..150.0f64) {
        for criterion in [
            Criterion::Perpendicular { epsilon: eps },
            Criterion::TimeRatio { epsilon: eps },
        ] {
            let td = TopDown::new(criterion);
            let iterative = td.compress(&t);
            let recursive = td.compress_recursive(&t);
            prop_assert_eq!(iterative.kept(), recursive.kept());
        }
    }

    /// Larger epsilon never keeps more points (top-down family).
    #[test]
    fn top_down_monotone_in_epsilon(t in trajectory(), eps in 1.0..100.0f64, factor in 1.0..5.0f64) {
        let small = TdTr::new(eps).compress(&t).kept_len();
        let large = TdTr::new(eps * factor).compress(&t).kept_len();
        prop_assert!(large <= small);
    }

    /// Closed-form α equals numeric quadrature for arbitrary compression
    /// results.
    #[test]
    fn alpha_closed_form_matches_numeric(t in trajectory(), eps in 1.0..150.0f64) {
        let r = TdTr::new(eps).compress(&t);
        let a = r.apply(&t);
        let closed = average_synchronous_error(&t, &a);
        let numeric = average_synchronous_error_numeric(&t, &a, 1e-9);
        prop_assert!(
            (closed - numeric).abs() <= 1e-5 + 1e-6 * closed.abs(),
            "closed={closed} numeric={numeric}"
        );
    }

    /// α is bounded by the continuous maximum, which in turn bounds the
    /// discrete sample maximum from above.
    #[test]
    fn alpha_ordering_invariants(t in trajectory(), eps in 1.0..150.0f64) {
        let r = OpeningWindow::opw_tr(eps).compress(&t);
        let a = r.apply(&t);
        let avg = average_synchronous_error(&t, &a);
        let max = max_synchronous_error(&t, &a);
        let (mean_sed, max_sed) = sed_at_samples(&t, &a);
        prop_assert!(avg <= max + 1e-9);
        prop_assert!(mean_sed <= max_sed + 1e-9);
        prop_assert!(max_sed <= max + 1e-9);
        prop_assert!(avg >= 0.0 && max.is_finite());
    }

    /// TD-TR's α error is bounded by its threshold's continuous
    /// consequence: since every removed point is within eps *at sample
    /// instants*, and the synchronous distance is piecewise linear-ish
    /// between them, the discrete max SED over samples is ≤ eps.
    #[test]
    fn td_tr_sample_sed_bounded_by_epsilon(t in trajectory(), eps in 1.0..150.0f64) {
        let r = TdTr::new(eps).compress(&t);
        let a = r.apply(&t);
        let (_, max_sed) = sed_at_samples(&t, &a);
        prop_assert!(max_sed <= eps + 1e-9, "max_sed={max_sed} eps={eps}");
    }

    /// Compressing an already-compressed trajectory with the same
    /// threshold changes nothing for the top-down family (idempotence on
    /// the kept set).
    #[test]
    fn td_tr_idempotent(t in trajectory(), eps in 1.0..150.0f64) {
        let c = TdTr::new(eps);
        let once = c.compress(&t).apply(&t);
        let twice = c.compress(&once).apply(&once);
        prop_assert_eq!(once, twice);
    }

    /// Uniform sampling keeps ⌈n/step⌉ (+ last) points.
    #[test]
    fn uniform_sample_count(t in trajectory(), step in 1usize..10) {
        let r = UniformSample::new(step).compress(&t);
        let n = t.len();
        let expect = n.div_ceil(step);
        let got = r.kept_len();
        prop_assert!(got == expect || got == expect + 1, "n={n} step={step} got={got}");
    }

    /// `compress_into` with a single shared (dirty, reused) workspace is
    /// observationally identical to `compress` for every registered
    /// compressor — the allocation-free kernels change nothing but wall
    /// time.
    #[test]
    fn compress_into_equals_compress_for_all(t in trajectory(), eps in 0.0..200.0f64, veps in 0.5..30.0f64) {
        let mut ws = Workspace::new();
        let mut out = CompressionResultBuf::new();
        for c in all_compressors(eps, veps) {
            c.compress_into(&t, &mut ws, &mut out);
            prop_assert_eq!(out.take(), c.compress(&t), "{}", c.name());
        }
    }

    /// The one-pass sweep is byte-identical to per-threshold compression
    /// for the whole top-down family, on arbitrary inputs and grids.
    #[test]
    fn sweep_equals_per_threshold_compress(
        t in trajectory(),
        grid in proptest::collection::vec(0.0..250.0f64, 1..6),
        veps in 0.5..30.0f64,
    ) {
        let tds = [
            TopDown::perpendicular(0.0),
            TopDown::time_ratio(0.0),
            TopDown::time_ratio_speed(0.0, veps),
        ];
        for td in tds {
            let swept = td.sweep(&t, &grid);
            for (r, &eps) in swept.iter().zip(&grid) {
                let single = TopDown::new(td.criterion().with_epsilon(eps)).compress(&t);
                prop_assert_eq!(r, &single, "{} eps={}", td.name(), eps);
            }
        }
    }

    /// Degenerate trajectories (1 and 2 fixes) sweep to identities for
    /// every grid.
    #[test]
    fn sweep_degenerate_inputs(grid in proptest::collection::vec(0.0..100.0f64, 0..4)) {
        let one = Trajectory::from_triples([(0.0, 0.0, 0.0)]).unwrap();
        let two = Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 3.0, 4.0)]).unwrap();
        for t in [&one, &two] {
            let swept = TopDown::time_ratio(0.0).sweep(t, &grid);
            prop_assert_eq!(swept.len(), grid.len());
            for r in swept {
                prop_assert_eq!(r.kept_len(), t.len());
            }
        }
    }
}

/// Streaming ≡ batch for the one-pass family on 0/1/2-fix degenerates
/// (the proptest strategy never generates fewer than 4 fixes, so these
/// are pinned explicitly).
#[test]
fn one_pass_stream_degenerate_inputs_match_batch() {
    let trajectories = [
        Vec::new(),
        vec![(0.0, 1.0, 2.0)],
        vec![(0.0, 0.0, 0.0), (7.0, 100.0, -3.0)],
    ];
    for triples in trajectories {
        let streams: Vec<(OnePassStream, Box<dyn Compressor>)> = vec![
            (OnePassStream::fit(20.0), Box::new(OnePassFit::new(20.0))),
            (OnePassStream::cone(20.0), Box::new(OnePassCone::new(20.0))),
        ];
        for (mut stream, batch) in streams {
            let mut got = Vec::new();
            for &(t, x, y) in &triples {
                got.extend(stream.push(Fix::from_parts(t, x, y)).unwrap());
            }
            got.extend(stream.finish());
            if triples.is_empty() {
                assert!(got.is_empty());
                continue;
            }
            let traj = Trajectory::from_triples(triples.iter().copied()).unwrap();
            let expected: Vec<Fix> =
                batch.compress(&traj).kept().iter().map(|&i| traj.fixes()[i]).collect();
            assert_eq!(got, expected, "{} on {} fixes", batch.name(), traj.len());
        }
    }
}
