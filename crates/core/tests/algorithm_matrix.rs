//! Matrix test: every compressor against every canonical motion shape.
//!
//! Each cell checks the universal invariants (endpoints kept, indices
//! strictly increasing, evaluation finite) plus shape-specific
//! expectations: stationary and straight-constant-speed motion must
//! collapse for the time-aware algorithms, stop-and-go must *not*
//! collapse under SED, and circles must keep enough points to bound the
//! error.

use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_compress::{
    evaluate, BottomUp, Compressor, DeadReckoning, DouglasPeucker, HullDouglasPeucker,
    OpeningWindow, SlidingWindow, TdSp, TdTr,
};
use traj_gen::simple::{circle, random_walk, stop_and_go, straight};
use traj_model::Trajectory;

fn algorithms(eps: f64) -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(DouglasPeucker::new(eps)),
        Box::new(HullDouglasPeucker::new(eps)),
        Box::new(TdTr::new(eps)),
        Box::new(TdSp::new(eps, 5.0)),
        Box::new(OpeningWindow::nopw(eps)),
        Box::new(OpeningWindow::bopw(eps)),
        Box::new(OpeningWindow::opw_tr(eps)),
        Box::new(OpeningWindow::opw_sp(eps, 5.0)),
        Box::new(BottomUp::time_ratio(eps)),
        Box::new(SlidingWindow::time_ratio(eps, 16)),
        Box::new(DeadReckoning::new(eps)),
    ]
}

fn shapes() -> Vec<(&'static str, Trajectory)> {
    vec![
        ("stationary", Trajectory::from_triples((0..50).map(|i| (i as f64 * 10.0, 3.0, 4.0))).unwrap()),
        ("straight", straight(100, 10.0, 14.0)),
        ("circle", circle(120, 10.0, 300.0, 0.01)),
        ("stop_and_go", stop_and_go(8, 10, 5, 10.0, 14.0)),
        ("random_walk", random_walk(&mut StdRng::seed_from_u64(5), 150, 10.0, 30.0)),
    ]
}

#[test]
fn universal_invariants_hold_for_every_cell() {
    for (shape, traj) in shapes() {
        for algo in algorithms(20.0) {
            let r = algo.compress(&traj);
            assert_eq!(r.kept()[0], 0, "{shape}/{}", algo.name());
            assert_eq!(
                *r.kept().last().unwrap(),
                traj.len() - 1,
                "{shape}/{}",
                algo.name()
            );
            let e = evaluate(&traj, &r);
            assert!(e.avg_sync_err_m.is_finite(), "{shape}/{}", algo.name());
            assert!(
                e.avg_sync_err_m <= e.max_sync_err_m + 1e-9,
                "{shape}/{}",
                algo.name()
            );
        }
    }
}

#[test]
fn stationary_object_collapses_everywhere() {
    let traj = Trajectory::from_triples((0..50).map(|i| (i as f64 * 10.0, 3.0, 4.0))).unwrap();
    for algo in algorithms(5.0) {
        let r = algo.compress(&traj);
        // Stationary: every interior point is exactly representable.
        // The sliding window caps segment span at 16 points by design, so
        // it keeps ⌈49/16⌉ + 1 = 5.
        let limit = if algo.name().starts_with("sliding-window") { 5 } else { 3 };
        assert!(
            r.kept_len() <= limit,
            "{} kept {} points of a stationary object",
            algo.name(),
            r.kept_len()
        );
    }
}

#[test]
fn straight_constant_speed_collapses_for_unbounded_lookback() {
    let traj = straight(100, 10.0, 14.0);
    for algo in [
        Box::new(DouglasPeucker::new(5.0)) as Box<dyn Compressor>,
        Box::new(TdTr::new(5.0)),
        Box::new(OpeningWindow::opw_tr(5.0)),
        Box::new(BottomUp::time_ratio(5.0)),
    ] {
        let r = algo.compress(&traj);
        assert_eq!(r.kept(), &[0, 99], "{}", algo.name());
    }
}

#[test]
fn stop_and_go_defeats_spatial_metrics_not_sed() {
    let traj = stop_and_go(8, 10, 5, 10.0, 14.0);
    // The path is a straight line: the perpendicular metric sees nothing.
    let ndp = DouglasPeucker::new(5.0).compress(&traj);
    assert_eq!(ndp.kept_len(), 2, "NDP collapses the straight path");
    let ndp_err = evaluate(&traj, &ndp).avg_sync_err_m;
    // The SED metric keeps the dwell structure.
    let tdtr = TdTr::new(5.0).compress(&traj);
    assert!(tdtr.kept_len() > 2);
    let tdtr_err = evaluate(&traj, &tdtr).avg_sync_err_m;
    assert!(
        tdtr_err < ndp_err / 5.0,
        "TD-TR {tdtr_err} m must crush NDP {ndp_err} m on stop-and-go"
    );
    assert!(tdtr_err <= 5.0, "TD-TR respects its own budget: {tdtr_err}");
}

#[test]
fn circle_error_stays_bounded_by_threshold_for_td_tr() {
    let traj = circle(120, 10.0, 300.0, 0.01);
    for eps in [5.0, 15.0, 40.0] {
        let r = TdTr::new(eps).compress(&traj);
        let e = evaluate(&traj, &r);
        assert!(
            e.max_sed_m <= eps + 1e-9,
            "eps={eps}: sample SED {} over budget",
            e.max_sed_m
        );
        // Tighter budgets keep more of the circle.
        assert!(e.compression_pct < 100.0);
    }
}

#[test]
fn compression_ranking_on_random_walk_is_sane() {
    // Batch top-down ≥ opening window ≥ sliding window (bounded span) in
    // compression at the same threshold, on rough terrain.
    let traj = random_walk(&mut StdRng::seed_from_u64(11), 300, 10.0, 25.0);
    let eps = 40.0;
    let td = TdTr::new(eps).compress(&traj).compression_pct();
    let ow = OpeningWindow::opw_tr(eps).compress(&traj).compression_pct();
    let sw = SlidingWindow::time_ratio(eps, 8).compress(&traj).compression_pct();
    assert!(td + 1e-9 >= ow, "td {td} < ow {ow}");
    assert!(ow + 15.0 >= sw, "ow {ow} ≪ sw {sw} — window cap should not win big");
}
