//! Fault-injection suite for the durable ingest path.
//!
//! The central test sweeps a *crash at every byte offset* of the entire
//! on-disk write stream — WAL appends, segment headers, snapshot temp
//! files, checksum trailers — and asserts the durability contract after
//! each: recovery restores exactly the acknowledged fixes, in order,
//! with no loss, no invention and no panic. Companion tests cover
//! at-rest bit rot and short reads (lost tails).
//!
//! Run with `cargo test -p traj-store --test durability`.

use std::path::Path;
use std::sync::Arc;

use traj_model::Fix;
use traj_store::storage::{MemStorage, Storage as _};
use traj_store::store::StoreError;
use traj_store::wal::{SyncPolicy, WalOptions};
use traj_store::{DurableOptions, DurableStore, GroupCommitOptions, GroupCommitStore, IngestMode};

const DB: &str = "/db";

fn opts() -> DurableOptions {
    DurableOptions {
        // Small segments so the sweep also crosses rotation boundaries.
        wal: WalOptions { segment_max_bytes: 512, sync: SyncPolicy::EveryAppend },
    }
}

/// The workload: three objects, interleaved appends, a mid-run snapshot
/// (so the sweep hits snapshot writes too), then more appends. Returns
/// the fixes that were *acknowledged* (append returned `Ok`) before the
/// injected crash — the set recovery must reproduce exactly.
fn run_workload(disk: &Arc<MemStorage>) -> Vec<(u64, Fix)> {
    let mut acked = Vec::new();
    let Ok((mut store, _)) =
        DurableStore::open_with(disk.clone(), Path::new(DB), IngestMode::Raw, opts())
    else {
        return acked; // crashed during open/recovery: nothing acknowledged
    };
    let fix = |i: usize, id: u64| {
        Fix::from_parts(i as f64 * 10.0, i as f64 * 35.0 + id as f64, (id * 100) as f64)
    };
    for i in 0..12 {
        for id in [1u64, 2, 3] {
            match store.append(id, fix(i, id)) {
                Ok(()) => acked.push((id, fix(i, id))),
                Err(_) => return acked, // crash: every later op fails too
            }
        }
        if i == 7 && store.snapshot().is_err() {
            return acked; // crash mid-snapshot loses no acknowledged fix
        }
    }
    acked
}

/// Reads back what a post-restart recovery sees, as (id, fix) pairs in
/// per-object order.
fn recover(disk: &Arc<MemStorage>) -> Vec<(u64, Fix)> {
    disk.lift_faults();
    let (store, report) =
        DurableStore::open_with(disk.clone(), Path::new(DB), IngestMode::Raw, opts())
            .expect("recovery after a clean tear must succeed");
    // A crash can only ever tear the *unacknowledged* tail.
    assert!(
        report.skipped_corrupt == 0,
        "crash tearing must never look like bit rot: {report:?}"
    );
    let mut out = Vec::new();
    for id in store.store().object_ids().collect::<Vec<_>>() {
        for f in store.store().stored_fixes(id).unwrap() {
            out.push((id, f));
        }
    }
    out
}

fn sort_key(v: &mut [(u64, Fix)]) {
    v.sort_by(|a, b| (a.0, a.1.t.as_secs()).partial_cmp(&(b.0, b.1.t.as_secs())).unwrap());
}

/// The acceptance criterion: after a crash at ANY byte boundary of the
/// write stream, recovery restores exactly the acknowledged-fix set.
#[test]
fn crash_at_every_byte_offset_preserves_acknowledged_prefix() {
    // Size the sweep with a fault-free run.
    let full_disk = Arc::new(MemStorage::new());
    let full_acked = run_workload(&full_disk);
    let total_bytes = full_disk.written_bytes();
    assert!(total_bytes > 1_500, "workload too small to be interesting: {total_bytes}");
    assert_eq!(full_acked.len(), 36);

    for budget in 0..=total_bytes {
        let disk = Arc::new(MemStorage::with_write_budget(budget));
        let mut acked = run_workload(&disk);
        let mut recovered = recover(&disk);
        sort_key(&mut acked);
        sort_key(&mut recovered);
        assert_eq!(
            recovered, acked,
            "crash after {budget} of {total_bytes} bytes: recovered set != acknowledged set"
        );
    }
}

/// Crashes under batched fsync must still never *invent* data, and an
/// acknowledged fix may only go missing if its sync was still pending —
/// modelled here as: recovery returns a per-object prefix of the
/// acknowledged stream.
#[test]
fn crash_sweep_with_batched_fsync_yields_acknowledged_prefixes() {
    let opts = DurableOptions {
        wal: WalOptions { segment_max_bytes: 512, sync: SyncPolicy::EveryN(5) },
    };
    let workload = |disk: &Arc<MemStorage>| -> Vec<(u64, Fix)> {
        let mut acked = Vec::new();
        let Ok((mut store, _)) =
            DurableStore::open_with(disk.clone(), Path::new(DB), IngestMode::Raw, opts)
        else {
            return acked;
        };
        for i in 0..25 {
            let f = Fix::from_parts(i as f64, i as f64 * 3.0, 0.0);
            match store.append(1, f) {
                Ok(()) => acked.push((1, f)),
                Err(_) => return acked,
            }
        }
        acked
    };
    let full = Arc::new(MemStorage::new());
    let _ = workload(&full);
    for budget in (0..=full.written_bytes()).step_by(7) {
        let disk = Arc::new(MemStorage::with_write_budget(budget));
        let acked = workload(&disk);
        disk.lift_faults();
        let (store, _) =
            DurableStore::open_with(disk.clone(), Path::new(DB), IngestMode::Raw, opts).unwrap();
        let recovered = store
            .store()
            .stored_fixes(1)
            .unwrap_or_default()
            .into_iter()
            .map(|f| (1u64, f))
            .collect::<Vec<_>>();
        assert!(
            recovered == acked[..recovered.len().min(acked.len())],
            "budget {budget}: recovered is not a prefix of acknowledged"
        );
        assert!(recovered.len() <= acked.len(), "budget {budget}: invented fixes");
    }
}

/// Group-commit workload: three sessions' fixes interleave into one
/// shard store, committing every `max_batch` buffers. A fix counts as
/// *acknowledged* only once a `commit` whose returned sequence covers
/// it succeeds — the ack-after-fsync protocol. Returns that set.
fn run_group_workload(disk: &Arc<MemStorage>, opts: DurableOptions) -> Vec<(u64, Fix)> {
    let mut acked = Vec::new();
    let mut pending = Vec::new();
    let group = GroupCommitOptions { max_batch: 4, ..GroupCommitOptions::default() };
    let Ok((mut store, _)) =
        GroupCommitStore::open_with(disk.clone(), Path::new(DB), IngestMode::Raw, opts, group)
    else {
        return acked;
    };
    let fix = |i: usize, id: u64| {
        Fix::from_parts(i as f64 * 10.0, i as f64 * 35.0 + id as f64, (id * 100) as f64)
    };
    for i in 0..10 {
        for id in [1u64, 2, 3] {
            match store.buffer(id, fix(i, id)) {
                Ok(seq) => pending.push((seq, (id, fix(i, id)))),
                Err(_) => return acked, // crash: poisoned, nothing more acks
            }
            if store.commit_due() {
                match store.commit() {
                    // The fsync returned: everything at or below the
                    // durable sequence is now acknowledged.
                    Ok(durable) => {
                        acked.extend(
                            pending.iter().filter(|(s, _)| *s <= durable).map(|(_, f)| *f),
                        );
                        pending.retain(|(s, _)| *s > durable);
                    }
                    Err(_) => return acked,
                }
            }
        }
    }
    if let Ok(durable) = store.commit() {
        acked.extend(pending.iter().filter(|(s, _)| *s <= durable).map(|(_, f)| *f));
    }
    acked
}

/// The group-commit acceptance criterion: crash at ANY byte offset of a
/// batched write stream, then lose the page cache (power loss) — and
/// recovery restores *exactly* the acknowledged (fsynced) prefix, never
/// an unacknowledged suffix. With segments large enough that rotation
/// never fsyncs behind the protocol's back, the commit fsync is the
/// only durability event, so equality is exact in both directions.
#[test]
fn group_commit_crash_at_every_byte_offset_restores_exactly_the_acked_prefix() {
    let opts = DurableOptions {
        wal: WalOptions { segment_max_bytes: 1 << 20, sync: SyncPolicy::EveryAppend },
    };
    // Size the sweep with a fault-free run.
    let full_disk = Arc::new(MemStorage::new());
    let full_acked = run_group_workload(&full_disk, opts);
    let total_bytes = full_disk.written_bytes();
    assert_eq!(full_acked.len(), 30, "fault-free run acks everything");

    for budget in 0..=total_bytes {
        let disk = Arc::new(MemStorage::with_write_budget(budget));
        let mut acked = run_group_workload(&disk, opts);
        // Power loss: unsynced page-cache bytes are gone, then restart.
        disk.drop_unsynced();
        let mut recovered = recover(&disk);
        sort_key(&mut acked);
        sort_key(&mut recovered);
        assert_eq!(
            recovered, acked,
            "crash after {budget} of {total_bytes} bytes: recovery must restore exactly \
             the fsync-covered acknowledged prefix"
        );
    }
}

/// With small segments, rotation adds fsyncs the commit protocol does
/// not see, so unacknowledged-but-synced records may legitimately
/// survive. The invariant that must still hold everywhere: no
/// acknowledged fix is ever lost, and nothing is invented — recovery is
/// a per-object prefix of the buffered stream at least as long as the
/// acknowledged one.
#[test]
fn group_commit_crash_sweep_with_rotation_never_loses_acked_fixes() {
    let opts = DurableOptions {
        wal: WalOptions { segment_max_bytes: 256, sync: SyncPolicy::EveryAppend },
    };
    let full_disk = Arc::new(MemStorage::new());
    // The fault-free run acks every fix the workload ever buffers, so
    // it doubles as the universe recovery may draw from.
    let universe = run_group_workload(&full_disk, opts);
    for budget in (0..=full_disk.written_bytes()).step_by(3) {
        let disk = Arc::new(MemStorage::with_write_budget(budget));
        let mut acked = run_group_workload(&disk, opts);
        disk.drop_unsynced();
        let mut recovered = recover(&disk);
        sort_key(&mut acked);
        sort_key(&mut recovered);
        for f in &acked {
            assert!(
                recovered.contains(f),
                "budget {budget}: acknowledged fix {f:?} lost after power loss"
            );
        }
        // Everything recovered was genuinely buffered by the workload.
        for pair in &recovered {
            assert!(universe.contains(pair), "budget {budget}: invented fix {pair:?}");
        }
    }
}

/// Bit rot anywhere in the WAL: recovery must never panic, never invent
/// fixes, and must report the rot it skipped. (Rot in a *snapshot* is a
/// loud `Corrupt` error instead — covered in the unit tests.)
#[test]
fn bit_flips_across_the_wal_are_detected_or_tolerated() {
    let disk = Arc::new(MemStorage::new());
    let acked = {
        let (mut store, _) =
            DurableStore::open_with(disk.clone(), Path::new(DB), IngestMode::Raw, opts())
                .unwrap();
        let mut acked = Vec::new();
        for i in 0..40 {
            let f = Fix::from_parts(i as f64 * 5.0, i as f64 * 11.0, -(i as f64));
            store.append(6, f).unwrap();
            acked.push(f);
        }
        acked
    };
    let wal_files: Vec<_> = disk
        .file_paths()
        .into_iter()
        .filter(|p| p.to_string_lossy().contains("wal-"))
        .collect();
    assert!(!wal_files.is_empty());
    for path in wal_files {
        let pristine = disk.file(&path).unwrap();
        for offset in (0..pristine.len()).step_by(3) {
            assert!(disk.corrupt_byte(&path, offset, 1 << (offset % 8)));
            match DurableStore::open_with(
                disk.clone(),
                Path::new(DB),
                IngestMode::Raw,
                opts(),
            ) {
                Ok((store, report)) => {
                    let recovered = store.store().stored_fixes(6).unwrap_or_default();
                    for f in &recovered {
                        assert!(
                            acked.contains(f),
                            "flip at {offset}: invented fix {f:?} from corrupt data"
                        );
                    }
                    assert!(
                        recovered.len() == acked.len() || !report.clean(),
                        "flip at {offset}: fixes went missing without being reported"
                    );
                }
                // Some flips (e.g. in a timestamp, breaking per-object
                // monotonicity while keeping the CRC... impossible — or
                // a replay-order violation) surface as errors; erroring
                // loudly is acceptable, silent loss is not.
                Err(StoreError::Storage { .. }) | Err(StoreError::Model(_)) => {}
                Err(e) => panic!("flip at {offset}: unexpected error class {e}"),
            }
            // Restore the pristine byte for the next iteration.
            let mut w = disk.create(&path).unwrap();
            w.write_all(&pristine).unwrap();
        }
    }
}

/// A lost tail (filesystem truncation after power loss) behaves like a
/// torn write: the surviving prefix of acknowledged fixes is recovered.
#[test]
fn short_read_of_final_segment_recovers_prefix() {
    let disk = Arc::new(MemStorage::new());
    let (mut store, _) =
        DurableStore::open_with(disk.clone(), Path::new(DB), IngestMode::Raw, opts()).unwrap();
    for i in 0..10 {
        store.append(2, Fix::from_parts(i as f64, i as f64, 0.0)).unwrap();
    }
    drop(store);
    let seg = disk
        .file_paths()
        .into_iter()
        .find(|p| p.to_string_lossy().contains("wal-"))
        .unwrap();
    let len = disk.file(&seg).unwrap().len();
    for keep in (8..len).step_by(5) {
        let disk2 = Arc::new(MemStorage::new());
        disk2.create_dir_all(Path::new("/db/wal")).unwrap();
        disk2.create_dir_all(Path::new("/db/snapshot")).unwrap();
        {
            let mut w = disk2.create(&seg).unwrap();
            w.write_all(&disk.file(&seg).unwrap()[..keep]).unwrap();
        }
        let (store, report) =
            DurableStore::open_with(disk2.clone(), Path::new(DB), IngestMode::Raw, opts())
                .unwrap();
        let recovered = store.store().stored_fixes(2).unwrap_or_default();
        // Each record is an 8-byte header plus a 33-byte fix payload,
        // after the 8-byte segment magic: the surviving record count is
        // exactly the number of whole records kept.
        let record = traj_store::wal::RECORD_HEADER_BYTES + traj_store::wal::FIX_PAYLOAD_BYTES;
        let whole = (keep - 8) / record;
        assert_eq!(recovered.len(), whole, "keep={keep}");
        for (i, f) in recovered.iter().enumerate() {
            assert_eq!(f.t.as_secs(), i as f64, "keep={keep}: prefix order broken");
        }
        assert_eq!(report.torn_tail, (keep - 8) % record != 0, "keep={keep}");
    }
}

/// Durability composes with compressed ingest: after a crash at sampled
/// offsets, every acknowledged fix is represented by the recovered
/// trajectory within the error budget.
#[test]
fn compressed_mode_crash_sweep_stays_within_error_budget() {
    let eps = 30.0;
    let mode = IngestMode::Compressed { epsilon: eps, speed_epsilon: None, max_window: 16 };
    let workload = |disk: &Arc<MemStorage>| -> Vec<Fix> {
        let mut acked = Vec::new();
        let Ok((mut store, _)) =
            DurableStore::open_with(disk.clone(), Path::new(DB), mode, opts())
        else {
            return acked;
        };
        for i in 0..60 {
            let t = i as f64 * 10.0;
            let f = Fix::from_parts(t, t * 4.0, (i as f64 * 0.7).sin() * 120.0);
            match store.append(9, f) {
                Ok(()) => acked.push(f),
                Err(_) => return acked,
            }
            if i == 30 && store.snapshot().is_err() {
                return acked;
            }
        }
        acked
    };
    let full = Arc::new(MemStorage::new());
    let _ = workload(&full);
    for budget in (0..=full.written_bytes()).step_by(13) {
        let disk = Arc::new(MemStorage::with_write_budget(budget));
        let acked = workload(&disk);
        disk.lift_faults();
        let (store, _) =
            DurableStore::open_with(disk.clone(), Path::new(DB), mode, opts()).unwrap();
        if acked.is_empty() {
            continue;
        }
        let recovered = store.store().trajectory(9).expect("object recovered");
        for f in &acked {
            let p = traj_model::interp::position_at(&recovered, f.t)
                .expect("acknowledged instant covered");
            let d = p.distance(f.pos);
            assert!(
                d <= eps + 1e-6,
                "budget {budget}: fix at t={} off by {d} m (> {eps})",
                f.t.as_secs()
            );
        }
    }
}
