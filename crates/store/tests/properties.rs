//! Property-based tests for the moving-object store and its indexes.

use std::path::Path;
use std::sync::Arc;

use proptest::prelude::*;
use traj_geom::{Bbox, Point2};
use traj_model::{Fix, Timestamp, Trajectory};
use traj_store::persist::{load_dir_with, save_dir_with};
use traj_store::query::{build_segment_rtree, rtree_objects_in_window};
use traj_store::storage::MemStorage;
use traj_store::{
    objects_in_window, position_of, DurableOptions, DurableStore, GridIndex, IngestMode,
    MovingObjectStore, QueryWindow,
};

/// A small fleet of valid random trajectories.
fn fleet() -> impl Strategy<Value = Vec<Trajectory>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                (5.0..20.0f64, -300.0..300.0f64, -300.0..300.0f64),
                3..40,
            ),
            0.0..500.0f64,
            (-3000.0..3000.0f64, -3000.0..3000.0f64),
        )
            .prop_map(|(steps, t0, (x0, y0))| {
                let mut t = t0;
                let (mut x, mut y) = (x0, y0);
                let mut triples = vec![(t, x, y)];
                for (dt, dx, dy) in steps {
                    t += dt;
                    x += dx;
                    y += dy;
                    triples.push((t, x, y));
                }
                Trajectory::from_triples(triples).expect("valid")
            }),
        1..6,
    )
}

fn load(fleet: &[Trajectory], mode: IngestMode) -> MovingObjectStore {
    let mut s = MovingObjectStore::new(mode);
    for (id, t) in fleet.iter().enumerate() {
        s.insert_trajectory(id as u64, t).expect("valid trajectories");
    }
    s
}

proptest! {
    /// Grid index, STR R-tree and full scan answer every window query
    /// identically, for raw and compressed stores alike.
    #[test]
    fn window_query_paths_agree(
        fleet in fleet(),
        cx in -3000.0..3000.0f64,
        cy in -3000.0..3000.0f64,
        w in 50.0..4000.0f64,
        t0 in 0.0..800.0f64,
        span in 10.0..500.0f64,
        compressed in proptest::bool::ANY,
    ) {
        let mode = if compressed {
            IngestMode::Compressed { epsilon: 40.0, speed_epsilon: None, max_window: 32 }
        } else {
            IngestMode::Raw
        };
        let store = load(&fleet, mode);
        let window = QueryWindow::new(
            Point2::new(cx, cy),
            Point2::new(cx + w, cy + w),
            t0,
            t0 + span,
        );
        let scan = objects_in_window(&store, &window);
        let grid = GridIndex::build(&store, 250.0, 120.0).objects_in_window(&window);
        let rtree = rtree_objects_in_window(&build_segment_rtree(&store), &window);
        prop_assert_eq!(&grid, &scan);
        prop_assert_eq!(&rtree, &scan);
    }

    /// Every window hit is justified: the object's stored motion really
    /// enters the box during the interval (verified by dense sampling).
    #[test]
    fn window_hits_are_sound(
        fleet in fleet(),
        cx in -2000.0..2000.0f64,
        cy in -2000.0..2000.0f64,
        w in 200.0..4000.0f64,
        t0 in 0.0..600.0f64,
        span in 50.0..500.0f64,
    ) {
        let store = load(&fleet, IngestMode::Raw);
        let bbox = Bbox::from_corners(Point2::new(cx, cy), Point2::new(cx + w, cy + w));
        let window = QueryWindow { bbox, t0: Timestamp::from_secs(t0), t1: Timestamp::from_secs(t0 + span) };
        for id in objects_in_window(&store, &window) {
            // Densely sample the motion over the window.
            let mut found = false;
            let steps = 400;
            for k in 0..=steps {
                let t = Timestamp::from_secs(t0 + span * k as f64 / steps as f64);
                if let Some(p) = position_of(&store, id, t) {
                    // Tolerance: the crossing may fall between samples.
                    if bbox.expanded(w.max(span) * 0.05 + 5.0).contains(p) {
                        found = true;
                        break;
                    }
                }
            }
            prop_assert!(found, "object {id} reported but never near the window");
        }
    }

    /// Compressed ingest honours the error budget at every original
    /// sample instant.
    #[test]
    fn compressed_store_error_budget(fleet in fleet(), eps in 5.0..100.0f64) {
        let store = load(
            &fleet,
            IngestMode::Compressed { epsilon: eps, speed_epsilon: None, max_window: 24 },
        );
        for (id, traj) in fleet.iter().enumerate() {
            for fix in traj.fixes() {
                let p = position_of(&store, id as u64, fix.t).expect("instant covered");
                prop_assert!(
                    p.distance(fix.pos) <= eps + 1e-6,
                    "object {id}: {} m over budget {eps}",
                    p.distance(fix.pos)
                );
            }
        }
    }

    /// Store statistics are conserved: ingested = Σ input lengths,
    /// stored ≤ ingested, raw mode stores everything.
    #[test]
    fn stats_conservation(fleet in fleet()) {
        let total: usize = fleet.iter().map(|t| t.len()).sum();
        let raw = load(&fleet, IngestMode::Raw);
        prop_assert_eq!(raw.stats().ingested_points, total);
        prop_assert_eq!(raw.stats().stored_points, total);
        let comp = load(
            &fleet,
            IngestMode::Compressed { epsilon: 50.0, speed_epsilon: None, max_window: 32 },
        );
        prop_assert_eq!(comp.stats().ingested_points, total);
        prop_assert!(comp.stats().stored_points <= total);
        prop_assert_eq!(comp.stats().objects, fleet.len());
    }

    /// The stored trajectory's span always reaches the latest ingested
    /// fix, compressed or not.
    #[test]
    fn span_reaches_latest(fleet in fleet(), compressed in proptest::bool::ANY) {
        let mode = if compressed {
            IngestMode::Compressed { epsilon: 30.0, speed_epsilon: Some(5.0), max_window: 16 }
        } else {
            IngestMode::Raw
        };
        let store = load(&fleet, mode);
        for (id, traj) in fleet.iter().enumerate() {
            let stored = store.trajectory(id as u64).expect("object exists");
            prop_assert_eq!(stored.start_time(), traj.start_time());
            prop_assert_eq!(stored.end_time(), traj.end_time());
        }
    }
}

proptest! {
    /// Persist → load → persist is a byte-for-byte fixpoint: snapshots
    /// (CSV body plus checksum trailer) round-trip exactly through the
    /// loader, so repeated save cycles can never drift.
    #[test]
    fn save_load_save_is_a_fixpoint(fleet in fleet()) {
        let store = load(&fleet, IngestMode::Raw);
        let disk = MemStorage::new();
        save_dir_with(&disk, &store, Path::new("/a")).expect("first save");
        let reloaded = load_dir_with(&disk, Path::new("/a")).expect("load back");
        save_dir_with(&disk, &reloaded, Path::new("/b")).expect("second save");
        for id in store.object_ids() {
            let a = disk.file(Path::new(&format!("/a/{id}.csv"))).expect("first copy");
            let b = disk.file(Path::new(&format!("/b/{id}.csv"))).expect("second copy");
            prop_assert_eq!(a, b, "snapshot for object {} drifted across a load cycle", id);
        }
    }

    /// Tearing the final WAL record at any interior byte loses exactly
    /// that record: recovery reports the torn tail and restores every
    /// earlier acknowledged fix, in order.
    #[test]
    fn torn_final_record_recovery_preserves_acknowledged_fixes(
        steps in proptest::collection::vec((1.0..15.0f64, -40.0..40.0f64, -40.0..40.0f64), 2..25),
        cut in 1..41usize,
    ) {
        let disk = Arc::new(MemStorage::new());
        let opts = DurableOptions::default();
        let mut acked = Vec::new();
        {
            let (mut store, _) =
                DurableStore::open_with(disk.clone(), Path::new("/db"), IngestMode::Raw, opts)
                    .expect("fresh open");
            let (mut t, mut x, mut y) = (0.0f64, 0.0f64, 0.0f64);
            for (dt, dx, dy) in steps {
                t += dt;
                x += dx;
                y += dy;
                let f = Fix::from_parts(t, x, y);
                store.append(7, f).expect("append");
                acked.push(f);
            }
        }
        // Tear into the last record of the newest segment. Records are
        // 41 bytes (8-byte header + 33-byte payload), so any cut of
        // 1..=40 trailing bytes lands strictly inside it.
        let seg = disk
            .file_paths()
            .into_iter()
            .filter(|p| p.to_string_lossy().contains("wal-"))
            .max()
            .expect("a WAL segment exists");
        let len = disk.file(&seg).expect("segment bytes").len();
        prop_assert!(disk.truncate_file(&seg, len - cut));
        let (store, report) =
            DurableStore::open_with(disk.clone(), Path::new("/db"), IngestMode::Raw, opts)
                .expect("recovery");
        prop_assert!(report.torn_tail, "a mid-record tear must be reported");
        prop_assert_eq!(report.skipped_corrupt, 0);
        let recovered = store.store().stored_fixes(7).expect("object survives");
        prop_assert_eq!(recovered.len(), acked.len() - 1, "exactly the torn record is lost");
        prop_assert_eq!(recovered.as_slice(), &acked[..acked.len() - 1]);
    }
}
