//! Property-based tests for the moving-object store and its indexes.

use proptest::prelude::*;
use traj_geom::{Bbox, Point2};
use traj_model::{Timestamp, Trajectory};
use traj_store::query::{build_segment_rtree, rtree_objects_in_window};
use traj_store::{
    objects_in_window, position_of, GridIndex, IngestMode, MovingObjectStore, QueryWindow,
};

/// A small fleet of valid random trajectories.
fn fleet() -> impl Strategy<Value = Vec<Trajectory>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                (5.0..20.0f64, -300.0..300.0f64, -300.0..300.0f64),
                3..40,
            ),
            0.0..500.0f64,
            (-3000.0..3000.0f64, -3000.0..3000.0f64),
        )
            .prop_map(|(steps, t0, (x0, y0))| {
                let mut t = t0;
                let (mut x, mut y) = (x0, y0);
                let mut triples = vec![(t, x, y)];
                for (dt, dx, dy) in steps {
                    t += dt;
                    x += dx;
                    y += dy;
                    triples.push((t, x, y));
                }
                Trajectory::from_triples(triples).expect("valid")
            }),
        1..6,
    )
}

fn load(fleet: &[Trajectory], mode: IngestMode) -> MovingObjectStore {
    let mut s = MovingObjectStore::new(mode);
    for (id, t) in fleet.iter().enumerate() {
        s.insert_trajectory(id as u64, t).expect("valid trajectories");
    }
    s
}

proptest! {
    /// Grid index, STR R-tree and full scan answer every window query
    /// identically, for raw and compressed stores alike.
    #[test]
    fn window_query_paths_agree(
        fleet in fleet(),
        cx in -3000.0..3000.0f64,
        cy in -3000.0..3000.0f64,
        w in 50.0..4000.0f64,
        t0 in 0.0..800.0f64,
        span in 10.0..500.0f64,
        compressed in proptest::bool::ANY,
    ) {
        let mode = if compressed {
            IngestMode::Compressed { epsilon: 40.0, speed_epsilon: None, max_window: 32 }
        } else {
            IngestMode::Raw
        };
        let store = load(&fleet, mode);
        let window = QueryWindow::new(
            Point2::new(cx, cy),
            Point2::new(cx + w, cy + w),
            t0,
            t0 + span,
        );
        let scan = objects_in_window(&store, &window);
        let grid = GridIndex::build(&store, 250.0, 120.0).objects_in_window(&window);
        let rtree = rtree_objects_in_window(&build_segment_rtree(&store), &window);
        prop_assert_eq!(&grid, &scan);
        prop_assert_eq!(&rtree, &scan);
    }

    /// Every window hit is justified: the object's stored motion really
    /// enters the box during the interval (verified by dense sampling).
    #[test]
    fn window_hits_are_sound(
        fleet in fleet(),
        cx in -2000.0..2000.0f64,
        cy in -2000.0..2000.0f64,
        w in 200.0..4000.0f64,
        t0 in 0.0..600.0f64,
        span in 50.0..500.0f64,
    ) {
        let store = load(&fleet, IngestMode::Raw);
        let bbox = Bbox::from_corners(Point2::new(cx, cy), Point2::new(cx + w, cy + w));
        let window = QueryWindow { bbox, t0: Timestamp::from_secs(t0), t1: Timestamp::from_secs(t0 + span) };
        for id in objects_in_window(&store, &window) {
            // Densely sample the motion over the window.
            let mut found = false;
            let steps = 400;
            for k in 0..=steps {
                let t = Timestamp::from_secs(t0 + span * k as f64 / steps as f64);
                if let Some(p) = position_of(&store, id, t) {
                    // Tolerance: the crossing may fall between samples.
                    if bbox.expanded(w.max(span) * 0.05 + 5.0).contains(p) {
                        found = true;
                        break;
                    }
                }
            }
            prop_assert!(found, "object {id} reported but never near the window");
        }
    }

    /// Compressed ingest honours the error budget at every original
    /// sample instant.
    #[test]
    fn compressed_store_error_budget(fleet in fleet(), eps in 5.0..100.0f64) {
        let store = load(
            &fleet,
            IngestMode::Compressed { epsilon: eps, speed_epsilon: None, max_window: 24 },
        );
        for (id, traj) in fleet.iter().enumerate() {
            for fix in traj.fixes() {
                let p = position_of(&store, id as u64, fix.t).expect("instant covered");
                prop_assert!(
                    p.distance(fix.pos) <= eps + 1e-6,
                    "object {id}: {} m over budget {eps}",
                    p.distance(fix.pos)
                );
            }
        }
    }

    /// Store statistics are conserved: ingested = Σ input lengths,
    /// stored ≤ ingested, raw mode stores everything.
    #[test]
    fn stats_conservation(fleet in fleet()) {
        let total: usize = fleet.iter().map(|t| t.len()).sum();
        let raw = load(&fleet, IngestMode::Raw);
        prop_assert_eq!(raw.stats().ingested_points, total);
        prop_assert_eq!(raw.stats().stored_points, total);
        let comp = load(
            &fleet,
            IngestMode::Compressed { epsilon: 50.0, speed_epsilon: None, max_window: 32 },
        );
        prop_assert_eq!(comp.stats().ingested_points, total);
        prop_assert!(comp.stats().stored_points <= total);
        prop_assert_eq!(comp.stats().objects, fleet.len());
    }

    /// The stored trajectory's span always reaches the latest ingested
    /// fix, compressed or not.
    #[test]
    fn span_reaches_latest(fleet in fleet(), compressed in proptest::bool::ANY) {
        let mode = if compressed {
            IngestMode::Compressed { epsilon: 30.0, speed_epsilon: Some(5.0), max_window: 16 }
        } else {
            IngestMode::Raw
        };
        let store = load(&fleet, mode);
        for (id, traj) in fleet.iter().enumerate() {
            let stored = store.trajectory(id as u64).expect("object exists");
            prop_assert_eq!(stored.start_time(), traj.start_time());
            prop_assert_eq!(stored.end_time(), traj.end_time());
        }
    }
}
