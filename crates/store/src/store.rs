//! The moving-object store.

use std::collections::BTreeMap;

use traj_compress::streaming::{OwStream, StreamingCompressor};
use traj_compress::{BreakStrategy, Criterion};
use traj_model::{Fix, ModelError, Trajectory};

/// Identifier of a tracked moving object.
pub type ObjectId = u64;

/// How fixes are persisted on ingest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestMode {
    /// Store every reported fix.
    Raw,
    /// Compress online with the opening-window stream (OPW-TR, or OPW-SP
    /// when a speed threshold is given): only the kept fixes are stored.
    Compressed {
        /// Synchronized-distance error budget, metres.
        epsilon: f64,
        /// Optional derived-speed-difference threshold, m/s (OPW-SP).
        speed_epsilon: Option<f64>,
        /// Bound on the open window (memory valve), fixes.
        max_window: usize,
    },
}

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// The object id is not present.
    UnknownObject(ObjectId),
    /// The fix was rejected (non-finite, or not later than the object's
    /// latest fix).
    Model(ModelError),
    /// A storage backend operation failed; `path` is the file or
    /// directory being touched.
    Storage {
        /// The path the failing operation was addressing.
        path: std::path::PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// On-disk data failed validation (checksum mismatch, malformed
    /// trailer, undecodable contents).
    Corrupt {
        /// The corrupt file.
        path: std::path::PathBuf,
        /// What exactly failed to validate.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownObject(id) => write!(f, "unknown object {id}"),
            StoreError::Model(e) => write!(f, "rejected fix: {e}"),
            StoreError::Storage { path, source } => {
                write!(f, "storage error at {}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt data in {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Model(e) => Some(e),
            StoreError::Storage { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ModelError> for StoreError {
    fn from(e: ModelError) -> Self {
        StoreError::Model(e)
    }
}

/// Aggregate storage statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of tracked objects.
    pub objects: usize,
    /// Fixes ever ingested.
    pub ingested_points: usize,
    /// Fixes actually stored (committed), including those still pending
    /// in open windows.
    pub stored_points: usize,
}

impl StoreStats {
    /// Percentage of ingested fixes *not* stored.
    pub fn compression_pct(&self) -> f64 {
        if self.ingested_points == 0 {
            0.0
        } else {
            100.0 * (self.ingested_points - self.stored_points) as f64
                / self.ingested_points as f64
        }
    }
}

/// Per-object state: committed fixes plus (in compressed mode) the open
/// window.
#[derive(Debug, Clone)]
struct ObjectState {
    committed: Vec<Fix>,
    stream: Option<OwStream>,
    ingested: usize,
}

impl ObjectState {
    /// Latest raw fix known for the object (pending tail wins over the
    /// last committed fix).
    fn latest(&self) -> Option<Fix> {
        match &self.stream {
            Some(s) if s.window_len() >= 2 => self.pending_tail(),
            _ => self.committed.last().copied(),
        }
    }

    fn pending_tail(&self) -> Option<Fix> {
        // The stream buffers [anchor, ..., float]; the anchor is already
        // committed. The float is the freshest position.
        self.stream.as_ref().and_then(|s| {
            if s.window_len() >= 2 {
                s.last_buffered()
            } else {
                None
            }
        })
    }
}

/// In-memory moving-object store with optional online compression.
///
/// ```
/// use traj_store::{IngestMode, MovingObjectStore};
/// use traj_model::Fix;
///
/// let mut store = MovingObjectStore::new(IngestMode::Compressed {
///     epsilon: 30.0,
///     speed_epsilon: None,
///     max_window: 256,
/// });
/// for i in 0..1000u64 {
///     // A car reporting every 10 s while cruising a straight road.
///     store.append(7, Fix::from_parts(i as f64 * 10.0, i as f64 * 150.0, 0.0)).unwrap();
/// }
/// let stats = store.stats();
/// assert!(stats.compression_pct() > 95.0);
/// ```
#[derive(Debug, Clone)]
pub struct MovingObjectStore {
    mode: IngestMode,
    objects: BTreeMap<ObjectId, ObjectState>,
}

impl MovingObjectStore {
    /// Creates an empty store with the given ingest mode.
    ///
    /// # Panics
    /// Panics on non-finite/negative thresholds in
    /// [`IngestMode::Compressed`].
    pub fn new(mode: IngestMode) -> Self {
        if let IngestMode::Compressed { epsilon, speed_epsilon, .. } = mode {
            assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be finite and >= 0");
            if let Some(v) = speed_epsilon {
                assert!(v >= 0.0 && !v.is_nan(), "speed_epsilon must be >= 0");
            }
        }
        MovingObjectStore { mode, objects: BTreeMap::new() }
    }

    /// The configured ingest mode.
    pub fn mode(&self) -> IngestMode {
        self.mode
    }

    fn new_stream(&self) -> Option<OwStream> {
        match self.mode {
            IngestMode::Raw => None,
            IngestMode::Compressed { epsilon, speed_epsilon, max_window } => {
                let criterion = match speed_epsilon {
                    None => Criterion::TimeRatio { epsilon },
                    Some(v) => Criterion::TimeRatioSpeed { epsilon, speed_epsilon: v },
                };
                Some(
                    OwStream::new(criterion, BreakStrategy::Normal)
                        .with_max_window(max_window),
                )
            }
        }
    }

    /// Appends a reported fix for `id`, creating the object on first
    /// contact.
    ///
    /// # Errors
    /// Rejects non-finite fixes and fixes not strictly later than the
    /// object's latest fix; the store state is unchanged on error.
    pub fn append(&mut self, id: ObjectId, fix: Fix) -> Result<(), StoreError> {
        if !fix.is_finite() {
            return Err(StoreError::Model(ModelError::NonFinite { index: 0 }));
        }
        let stream_template = self.new_stream();
        let state = self.objects.entry(id).or_insert_with(|| ObjectState {
            committed: Vec::new(),
            stream: stream_template,
            ingested: 0,
        });
        match &mut state.stream {
            None => {
                if let Some(last) = state.committed.last() {
                    // `fix` is already known finite.
                    if last.t >= fix.t {
                        return Err(StoreError::Model(ModelError::NonMonotonicTime {
                            index: state.ingested,
                        }));
                    }
                }
                state.committed.push(fix);
            }
            Some(stream) => {
                if stream.window_len() == 0 {
                    // A fresh stream (first contact, or right after
                    // `restore_trajectory`) has no window to check
                    // monotonicity against; the committed history is
                    // the reference.
                    if let Some(last) = state.committed.last() {
                        if last.t >= fix.t {
                            return Err(StoreError::Model(ModelError::NonMonotonicTime {
                                index: state.ingested,
                            }));
                        }
                    }
                }
                let emitted = stream.push(fix)?;
                state.committed.extend(emitted);
            }
        }
        state.ingested += 1;
        traj_obs::counter!("store", "inserts").inc();
        Ok(())
    }

    /// Bulk-inserts a whole trajectory for `id`.
    ///
    /// # Errors
    /// Fails like [`MovingObjectStore::append`]; fixes before the error
    /// remain ingested.
    pub fn insert_trajectory(&mut self, id: ObjectId, traj: &Trajectory) -> Result<(), StoreError> {
        for f in traj.fixes() {
            self.append(id, *f)?;
        }
        Ok(())
    }

    /// Installs `fixes` as the *already-kept* committed history of `id`,
    /// bypassing compression — the recovery path ([`crate::load_dir`],
    /// [`crate::DurableStore`]). Re-feeding an already-compressed subset
    /// through the ingest stream would silently stack error budgets;
    /// this does not. Any existing state for `id` is replaced; later
    /// [`MovingObjectStore::append`]s continue in the configured ingest
    /// mode from the restored history's end.
    ///
    /// # Errors
    /// Rejects non-finite fixes and non-strictly-increasing timestamps;
    /// the store is unchanged on error.
    pub fn restore_trajectory(
        &mut self,
        id: ObjectId,
        fixes: Vec<Fix>,
    ) -> Result<(), StoreError> {
        for (i, f) in fixes.iter().enumerate() {
            if !f.is_finite() {
                return Err(StoreError::Model(ModelError::NonFinite { index: i }));
            }
            if i > 0 && fixes[i - 1].t >= f.t {
                return Err(StoreError::Model(ModelError::NonMonotonicTime { index: i }));
            }
        }
        let ingested = fixes.len();
        let stream = self.new_stream();
        self.objects.insert(id, ObjectState { committed: fixes, stream, ingested });
        Ok(())
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store tracks no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterator over tracked object ids, ascending.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }

    /// The *stored* fixes of `id`: committed kept fixes plus, in
    /// compressed mode, the freshest buffered fix (so the queryable span
    /// always reaches the latest report).
    pub fn stored_fixes(&self, id: ObjectId) -> Option<Vec<Fix>> {
        let state = self.objects.get(&id)?;
        let mut fixes = state.committed.clone();
        if let Some(tail) = state.pending_tail() {
            fixes.push(tail);
        }
        Some(fixes)
    }

    /// Materializes the stored trajectory of `id` (needs ≥ 1 stored fix).
    pub fn trajectory(&self, id: ObjectId) -> Option<Trajectory> {
        let fixes = self.stored_fixes(id)?;
        Trajectory::new(fixes).ok()
    }

    /// The latest raw fix known for `id`.
    pub fn latest(&self, id: ObjectId) -> Option<Fix> {
        self.objects.get(&id)?.latest()
    }

    /// Offline compaction: re-compresses each object's *committed*
    /// history with a batch compressor, which the paper notes
    /// "consistently produce\[s\] higher quality results" than the online
    /// algorithms that ran at ingest time. Returns the number of fixes
    /// removed.
    ///
    /// Open windows are untouched: only the committed prefix up to the
    /// current anchor is rewritten (the anchor itself is kept, so the
    /// stream's invariants still hold). On raw-mode stores the whole
    /// history is compacted.
    pub fn compact<C: traj_compress::Compressor + ?Sized>(&mut self, compressor: &C) -> usize {
        let mut removed = 0usize;
        for state in self.objects.values_mut() {
            if state.committed.len() < 3 {
                continue;
            }
            let Ok(traj) = Trajectory::new(state.committed.clone()) else {
                continue;
            };
            let result = compressor.compress(&traj);
            removed += result.removed();
            state.committed = result.apply(&traj).into_fixes();
        }
        traj_obs::counter!("store", "compact_removed").add(removed as u64);
        removed
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let mut ingested = 0usize;
        let mut stored = 0usize;
        for s in self.objects.values() {
            ingested += s.ingested;
            stored += s.committed.len();
            if s.pending_tail().is_some() {
                stored += 1;
            }
        }
        StoreStats { objects: self.objects.len(), ingested_points: ingested, stored_points: stored }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zigzag_fixes(n: usize) -> Vec<Fix> {
        (0..n)
            .map(|i| {
                let leg = i / 10;
                let along = (i % 10) as f64;
                let (x, y) = if leg % 2 == 0 {
                    (leg as f64 * 1000.0 + along * 100.0, 0.0)
                } else {
                    ((leg + 1) as f64 * 1000.0 - 1000.0 + 900.0, along * 100.0)
                };
                Fix::from_parts(i as f64 * 10.0, x, y)
            })
            .collect()
    }

    #[test]
    fn raw_mode_stores_everything() {
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        for f in zigzag_fixes(50) {
            s.append(1, f).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.objects, 1);
        assert_eq!(st.ingested_points, 50);
        assert_eq!(st.stored_points, 50);
        assert_eq!(st.compression_pct(), 0.0);
    }

    #[test]
    fn compressed_mode_stores_fewer_points() {
        let mut s = MovingObjectStore::new(IngestMode::Compressed {
            epsilon: 50.0,
            speed_epsilon: None,
            max_window: 256,
        });
        for f in zigzag_fixes(200) {
            s.append(1, f).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.ingested_points, 200);
        assert!(st.stored_points < 200, "stored {}", st.stored_points);
        assert!(st.compression_pct() > 0.0);
    }

    #[test]
    fn queryable_span_reaches_latest_report() {
        let mut s = MovingObjectStore::new(IngestMode::Compressed {
            epsilon: 1e6, // everything compresses; window stays open
            speed_epsilon: None,
            max_window: 10_000,
        });
        let fixes = zigzag_fixes(30);
        for f in &fixes {
            s.append(9, *f).unwrap();
        }
        let t = s.trajectory(9).unwrap();
        assert_eq!(t.end_time(), fixes.last().unwrap().t);
        assert_eq!(s.latest(9).unwrap(), *fixes.last().unwrap());
    }

    #[test]
    fn multiple_objects_are_isolated() {
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        s.append(1, Fix::from_parts(0.0, 0.0, 0.0)).unwrap();
        s.append(2, Fix::from_parts(0.0, 100.0, 0.0)).unwrap();
        s.append(1, Fix::from_parts(10.0, 10.0, 0.0)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.trajectory(1).unwrap().len(), 2);
        assert_eq!(s.trajectory(2).unwrap().len(), 1);
        assert_eq!(s.object_ids().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn rejects_nonmonotonic_appends() {
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        s.append(1, Fix::from_parts(10.0, 0.0, 0.0)).unwrap();
        let e = s.append(1, Fix::from_parts(5.0, 1.0, 0.0));
        assert!(matches!(e, Err(StoreError::Model(ModelError::NonMonotonicTime { .. }))));
        // Store unchanged.
        assert_eq!(s.stats().ingested_points, 1);
    }

    #[test]
    fn rejects_nonfinite_fix() {
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        let e = s.append(1, Fix::from_parts(f64::NAN, 0.0, 0.0));
        assert!(matches!(e, Err(StoreError::Model(ModelError::NonFinite { .. }))));
        assert!(s.is_empty());
    }

    #[test]
    fn unknown_object_queries_return_none() {
        let s = MovingObjectStore::new(IngestMode::Raw);
        assert!(s.trajectory(77).is_none());
        assert!(s.latest(77).is_none());
        assert!(s.stored_fixes(77).is_none());
    }

    #[test]
    fn insert_trajectory_bulk() {
        let traj = Trajectory::new(zigzag_fixes(40)).unwrap();
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        s.insert_trajectory(5, &traj).unwrap();
        assert_eq!(s.trajectory(5).unwrap(), traj);
    }

    #[test]
    fn compact_reduces_raw_history_and_keeps_span() {
        use traj_compress::{Compressor, TdTr};
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        let traj = Trajectory::new(zigzag_fixes(200)).unwrap();
        s.insert_trajectory(4, &traj).unwrap();
        let before = s.stats().stored_points;
        let removed = s.compact(&TdTr::new(40.0));
        assert!(removed > 0);
        assert_eq!(s.stats().stored_points, before - removed);
        let compacted = s.trajectory(4).unwrap();
        assert_eq!(compacted.start_time(), traj.start_time());
        assert_eq!(compacted.end_time(), traj.end_time());
        // Compaction matches running the batch compressor directly.
        let direct = TdTr::new(40.0).compress(&traj).apply(&traj);
        assert_eq!(compacted, direct);
    }

    #[test]
    fn compact_beats_online_ingest_on_compression() {
        use traj_compress::TdTr;
        // Paper §2: batch algorithms consistently beat online ones.
        let traj = Trajectory::new(zigzag_fixes(300)).unwrap();
        let mut online = MovingObjectStore::new(IngestMode::Compressed {
            epsilon: 40.0,
            speed_epsilon: None,
            max_window: 64,
        });
        online.insert_trajectory(1, &traj).unwrap();
        let online_stored = online.stats().stored_points;
        let mut compacted = MovingObjectStore::new(IngestMode::Raw);
        compacted.insert_trajectory(1, &traj).unwrap();
        compacted.compact(&TdTr::new(40.0));
        let batch_stored = compacted.stats().stored_points;
        assert!(
            batch_stored <= online_stored,
            "batch {batch_stored} vs online {online_stored}"
        );
    }

    #[test]
    fn restore_bypasses_compression_and_resumes_ingest() {
        let mut s = MovingObjectStore::new(IngestMode::Compressed {
            epsilon: 1e9, // everything would compress away if streamed
            speed_epsilon: None,
            max_window: 64,
        });
        let kept = zigzag_fixes(10);
        s.restore_trajectory(5, kept.clone()).unwrap();
        // The restored subset is stored verbatim, not re-compressed.
        assert_eq!(s.stored_fixes(5).unwrap(), kept);
        assert_eq!(s.stats().ingested_points, 10);
        // Ingest resumes in the configured mode after the restored end.
        let last_t = kept.last().unwrap().t.as_secs();
        s.append(5, Fix::from_parts(last_t + 10.0, 0.0, 0.0)).unwrap();
        // A stale fix is rejected even though the fresh stream has no
        // window yet.
        let stale = s.append(5, Fix::from_parts(last_t, 1.0, 1.0));
        assert!(matches!(stale, Err(StoreError::Model(ModelError::NonMonotonicTime { .. }))));
    }

    #[test]
    fn restore_validates_input() {
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        let bad = vec![Fix::from_parts(10.0, 0.0, 0.0), Fix::from_parts(5.0, 0.0, 0.0)];
        assert!(s.restore_trajectory(1, bad).is_err());
        assert!(s
            .restore_trajectory(1, vec![Fix::from_parts(f64::NAN, 0.0, 0.0)])
            .is_err());
        assert!(s.is_empty(), "failed restore must not leave state behind");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn ingest_bumps_insert_counter() {
        // The registry is global and tests run in parallel, so assert a
        // monotone delta rather than an absolute value.
        let before = traj_obs::counter!("store", "inserts").get();
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        for f in zigzag_fixes(25) {
            s.append(1, f).unwrap();
        }
        let after = traj_obs::counter!("store", "inserts").get();
        assert!(after >= before + 25, "inserts {before} -> {after}");
    }

    #[test]
    fn compressed_error_stays_within_budget_at_samples() {
        use traj_compress::error::sed_at_samples;
        let eps = 40.0;
        let mut s = MovingObjectStore::new(IngestMode::Compressed {
            epsilon: eps,
            speed_epsilon: None,
            max_window: 64,
        });
        let traj = Trajectory::new(zigzag_fixes(200)).unwrap();
        s.insert_trajectory(3, &traj).unwrap();
        let stored = s.trajectory(3).unwrap();
        let (_, max_sed) = sed_at_samples(&traj, &stored);
        assert!(max_sed <= eps + 1e-6, "max SED {max_sed} > budget {eps}");
    }
}
