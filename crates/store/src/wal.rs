//! Write-ahead log for the ingest path.
//!
//! Every fix accepted by [`crate::DurableStore`] is appended here
//! *before* it is acknowledged, so an ingest crash can lose at most the
//! unacknowledged fix in flight. The log is a sequence of segment files
//! `wal-<seq>.log`, each a magic header followed by length-prefixed,
//! CRC-32-checksummed records; the exact byte layout is specified in
//! `crates/store/README.md` and pinned by tests against these constants.
//!
//! Recovery ([`replay_dir`]) tolerates exactly the failure modes a
//! crash can produce: a torn final record (stop, report the tail), a
//! torn segment header (treat the segment as empty), and at-rest bit
//! rot (skip the record whose CRC fails, keep scanning while the length
//! framing stays plausible).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use traj_model::Fix;

use crate::storage::{crc32, Storage, StorageWriter};
use crate::store::{ObjectId, StoreError};

/// Segment file magic: identifies the format and pins version 1.
pub const SEGMENT_MAGIC: &[u8; 8] = b"TRAJWAL1";

/// Per-record framing overhead: `len: u32` + `crc: u32`, little-endian.
pub const RECORD_HEADER_BYTES: usize = 8;

/// Payload of an appended-fix record: kind tag, object id, `t`,`x`,`y`.
pub const FIX_PAYLOAD_BYTES: usize = 1 + 8 + 3 * 8;

/// Record kind tag for an appended fix (the only kind in version 1).
pub const KIND_APPEND_FIX: u8 = 1;

/// Upper bound on a sane record payload; a length field above this is
/// treated as framing corruption (torn tail), not a huge record.
pub const MAX_PAYLOAD_BYTES: u32 = 1024;

/// When the log forces data down to disk — the durability/throughput
/// tradeoff of the ingest path, in one knob.
///
/// `fsync` dominates per-append cost on a real disk (hundreds of
/// microseconds to milliseconds, vs. nanoseconds for the buffered
/// write), so the policy decides both the throughput ceiling and what
/// a *power loss* can take back:
///
/// * [`SyncPolicy::EveryAppend`] — every acknowledged fix survives
///   power loss, at one fsync per append. This is
///   [`WalOptions::default`], chosen so naive callers can never lose
///   an acknowledged fix; it is also the slowest choice by orders of
///   magnitude (`BENCH_PR10.json`).
/// * [`SyncPolicy::EveryN`] — amortizes the fsync over `n` appends
///   *of one caller*. Appends between syncs are acknowledged but
///   volatile: a process crash alone loses nothing (the OS still has
///   the write), power loss can take back up to `n-1` acknowledged
///   fixes.
/// * [`SyncPolicy::Manual`] — the log never syncs on its own; the
///   caller owns the commit point via [`Wal::sync`]. This is the
///   building block for *group commit*
///   ([`crate::GroupCommitStore`]): appends from many sessions
///   accumulate and one fsync makes the whole batch durable, after
///   which — and only after which — those fixes are acknowledged.
///   Same durability class as `EveryAppend` (nothing is acknowledged
///   before its fsync) at a fraction of the syncs.
///
/// Callers that want batching without silently weakening the
/// acknowledged-means-durable guarantee should use
/// [`crate::DurableStore::open_group_commit`], which pairs `Manual`
/// with the explicit ack-after-commit protocol, rather than handing
/// `EveryN`/`Manual` to a store whose acks are per-append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append — an acknowledged fix survives power
    /// loss (the durability default).
    EveryAppend,
    /// `fsync` once per `n` appends — batches the sync cost at the price
    /// of up to `n-1` acknowledged-but-volatile fixes on power loss
    /// (crash-of-the-process alone loses nothing).
    EveryN(u32),
    /// Only on [`Wal::sync`], rotation and truncation.
    Manual,
}

/// Tuning knobs for the write-ahead log.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_max_bytes: u64,
    /// Fsync batching policy.
    pub sync: SyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { segment_max_bytes: 1 << 20, sync: SyncPolicy::EveryAppend }
    }
}

/// One logical WAL entry: object `id` reported `fix`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalRecord {
    /// The reporting object.
    pub id: ObjectId,
    /// The reported fix.
    pub fix: Fix,
}

/// What a [`replay_dir`] scan found, beyond the records themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Segment files scanned.
    pub segments: usize,
    /// Records that decoded cleanly.
    pub records: usize,
    /// Records skipped because their CRC did not match (bit rot).
    pub corrupt_skipped: usize,
    /// Whether a segment ended in a torn (incomplete) record or header.
    pub torn_tail: bool,
}

/// Serializes one record (header + payload) into `out`.
fn encode_record(out: &mut Vec<u8>, id: ObjectId, fix: &Fix) {
    let mut payload = [0u8; FIX_PAYLOAD_BYTES];
    payload[0] = KIND_APPEND_FIX;
    payload[1..9].copy_from_slice(&id.to_le_bytes());
    payload[9..17].copy_from_slice(&fix.t.as_secs().to_le_bytes());
    payload[17..25].copy_from_slice(&fix.pos.x.to_le_bytes());
    payload[25..33].copy_from_slice(&fix.pos.y.to_le_bytes());
    out.extend_from_slice(&(FIX_PAYLOAD_BYTES as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    if payload.len() != FIX_PAYLOAD_BYTES || payload[0] != KIND_APPEND_FIX {
        return None;
    }
    let le8 = |s: &[u8]| -> Option<[u8; 8]> { s.try_into().ok() };
    let id = ObjectId::from_le_bytes(le8(&payload[1..9])?);
    let t = f64::from_le_bytes(le8(&payload[9..17])?);
    let x = f64::from_le_bytes(le8(&payload[17..25])?);
    let y = f64::from_le_bytes(le8(&payload[25..33])?);
    Some(WalRecord { id, fix: Fix::from_parts(t, x, y) })
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

/// Parses a segment's sequence number out of its file name.
fn segment_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    digits.parse().ok()
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Storage { path: path.to_path_buf(), source }
}

/// Decodes one segment's bytes into records.
fn scan_segment(bytes: &[u8], out: &mut Vec<WalRecord>, summary: &mut ReplaySummary) {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        // A crash while writing the 8-byte header leaves a short or
        // garbled prefix; the segment holds no acknowledged data.
        summary.torn_tail = true;
        return;
    }
    let mut off = SEGMENT_MAGIC.len();
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < RECORD_HEADER_BYTES {
            summary.torn_tail = true; // torn mid-header
            return;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        if len > MAX_PAYLOAD_BYTES {
            // Length framing is implausible: either a torn header or a
            // flipped length byte. Resynchronizing past it is unsafe, so
            // stop here.
            summary.torn_tail = true;
            return;
        }
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let end = RECORD_HEADER_BYTES + len as usize;
        if rest.len() < end {
            summary.torn_tail = true; // torn mid-payload
            return;
        }
        let payload = &rest[RECORD_HEADER_BYTES..end];
        if crc32(payload) == crc {
            match decode_payload(payload) {
                Some(rec) => {
                    out.push(rec);
                    summary.records += 1;
                }
                // Checksum fine but unknown kind/shape: a future format
                // we do not understand — skip, count it.
                None => summary.corrupt_skipped += 1,
            }
        } else {
            // Payload bit rot under intact framing: skip this record
            // and keep scanning.
            summary.corrupt_skipped += 1;
        }
        off += end;
    }
}

/// Scans every `wal-*.log` under `dir` (ascending sequence) and returns
/// the decoded records plus a summary of skips and tears. A missing
/// directory is an empty log.
///
/// # Errors
/// Fails only on backend I/O errors (with the offending path attached),
/// never on corrupt contents — those are reported in the summary.
pub fn replay_dir(
    storage: &dyn Storage,
    dir: &Path,
) -> Result<(Vec<WalRecord>, ReplaySummary), StoreError> {
    let _span = traj_obs::trace_span!("wal.replay");
    let mut records = Vec::new();
    let mut summary = ReplaySummary::default();
    let mut segments: Vec<(u64, PathBuf)> = match storage.list(dir) {
        Ok(paths) => paths.into_iter().filter_map(|p| segment_seq(&p).map(|s| (s, p))).collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((records, summary)),
        Err(e) => return Err(io_err(dir, e)),
    };
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    for (_, path) in segments {
        let bytes = storage.read(&path).map_err(|e| io_err(&path, e))?;
        summary.segments += 1;
        scan_segment(&bytes, &mut records, &mut summary);
    }
    Ok((records, summary))
}

/// The append-side handle of the write-ahead log.
///
/// A `Wal` only ever *starts new* segments — after recovery it never
/// appends to a pre-existing file, so a torn tail from the previous run
/// can never mask records written after it.
pub struct Wal {
    storage: Arc<dyn Storage>,
    dir: PathBuf,
    opts: WalOptions,
    /// Sequence number of the next segment to create.
    next_seq: u64,
    writer: Option<Box<dyn StorageWriter>>,
    segment_bytes: u64,
    appends_since_sync: u32,
    buf: Vec<u8>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("next_seq", &self.next_seq)
            .field("segment_bytes", &self.segment_bytes)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Opens the log under `dir` (created if missing). Existing segments
    /// are left untouched; the first append starts a fresh segment after
    /// the highest existing sequence number.
    ///
    /// # Errors
    /// Backend failures creating or listing the directory.
    pub fn open(
        storage: Arc<dyn Storage>,
        dir: &Path,
        opts: WalOptions,
    ) -> Result<Self, StoreError> {
        storage.create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let max_seq = storage
            .list(dir)
            .map_err(|e| io_err(dir, e))?
            .iter()
            .filter_map(|p| segment_seq(p))
            .max();
        Ok(Wal {
            storage,
            dir: dir.to_path_buf(),
            opts,
            next_seq: max_seq.map_or(1, |s| s + 1),
            writer: None,
            segment_bytes: 0,
            appends_since_sync: 0,
            buf: Vec::with_capacity(RECORD_HEADER_BYTES + FIX_PAYLOAD_BYTES),
        })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn open_segment(&mut self) -> Result<&mut Box<dyn StorageWriter>, StoreError> {
        if self.writer.is_none() {
            let path = segment_path(&self.dir, self.next_seq);
            let mut w = self.storage.create(&path).map_err(|e| io_err(&path, e))?;
            w.write_all(SEGMENT_MAGIC).map_err(|e| io_err(&path, e))?;
            // Make the segment's directory entry durable before any
            // record lands in it.
            self.storage.sync_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
            self.next_seq += 1;
            self.segment_bytes = SEGMENT_MAGIC.len() as u64;
            self.writer = Some(w);
            traj_obs::counter!("store", "wal_segments").inc();
        }
        match self.writer.as_mut() {
            Some(w) => Ok(w),
            // Unreachable (assigned just above); surfaced as an I/O
            // error rather than a panic to keep the library panic-free.
            None => Err(io_err(&self.dir, std::io::Error::other("segment writer missing"))),
        }
    }

    /// Appends one fix record; the record is durable per the configured
    /// [`SyncPolicy`] when this returns.
    ///
    /// # Errors
    /// Backend write/sync failures. After an error the current segment
    /// is abandoned (the next append starts a new one), so a torn tail
    /// never precedes good records within one segment.
    pub fn append(&mut self, id: ObjectId, fix: &Fix) -> Result<(), StoreError> {
        let _span = traj_obs::trace_span!("wal.append");
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        encode_record(&mut buf, id, fix);
        let res = self.append_encoded(&buf);
        if res.is_err() {
            // The segment may end in a torn record; never append after it.
            self.writer = None;
        }
        self.buf = buf;
        res
    }

    /// Writes one already-encoded record to the current segment,
    /// rotating and syncing per policy. On error the caller abandons
    /// the segment.
    fn append_encoded(&mut self, buf: &[u8]) -> Result<(), StoreError> {
        let n = buf.len() as u64;
        self.open_segment()?;
        // `next_seq` already points past the segment we just opened.
        let path = segment_path(&self.dir, self.next_seq - 1);
        let Some(w) = self.writer.as_mut() else {
            return Err(io_err(&path, std::io::Error::other("segment writer missing")));
        };
        w.write_all(buf).map_err(|e| io_err(&path, e))?;
        self.segment_bytes += n;
        self.appends_since_sync += 1;
        let due = match self.opts.sync {
            SyncPolicy::EveryAppend => true,
            SyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            SyncPolicy::Manual => false,
        };
        if due {
            self.sync()?;
        }
        traj_obs::counter!("store", "wal_appends").inc();
        traj_obs::counter!("store", "wal_append_bytes").add(n);
        if self.segment_bytes >= self.opts.segment_max_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Forces everything appended so far down to durable storage.
    ///
    /// # Errors
    /// Backend sync failures.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(w) = &mut self.writer {
            let _span = traj_obs::trace_span!("wal.fsync");
            w.sync().map_err(|e| io_err(&self.dir, e))?;
            traj_obs::counter!("store", "wal_fsyncs").inc();
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Closes the current segment; the next append opens a new one.
    ///
    /// # Errors
    /// Propagates the final sync's failure.
    pub fn rotate(&mut self) -> Result<(), StoreError> {
        self.sync()?;
        self.writer = None;
        Ok(())
    }

    /// Deletes every segment on disk — called once a snapshot has made
    /// their contents redundant. The next append starts a fresh segment.
    ///
    /// # Errors
    /// Backend list/remove failures; segments already gone are fine.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.rotate()?;
        for path in self.storage.list(&self.dir).map_err(|e| io_err(&self.dir, e))? {
            if segment_seq(&path).is_some() {
                match self.storage.remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(io_err(&path, e)),
                }
            }
        }
        self.storage.sync_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        traj_obs::counter!("store", "wal_truncations").inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn fix(t: f64) -> Fix {
        Fix::from_parts(t, t * 2.0, -t)
    }

    fn wal_dir() -> PathBuf {
        PathBuf::from("/db/wal")
    }

    #[test]
    fn append_and_replay_roundtrip() -> Result<(), Box<dyn std::error::Error>> {
        let storage = Arc::new(MemStorage::new());
        let mut wal = Wal::open(storage.clone(), &wal_dir(), WalOptions::default())?;
        for i in 0..10 {
            wal.append(7, &fix(i as f64))?;
        }
        let (records, summary) = replay_dir(storage.as_ref(), &wal_dir())?;
        assert_eq!(records.len(), 10);
        assert_eq!(summary.records, 10);
        assert_eq!(summary.segments, 1);
        assert!(!summary.torn_tail);
        assert_eq!(records[3], WalRecord { id: 7, fix: fix(3.0) });
        Ok(())
    }

    #[test]
    fn record_byte_layout_matches_spec() {
        let mut out = Vec::new();
        encode_record(&mut out, 0x0102_0304, &Fix::from_parts(1.0, 2.0, 3.0));
        assert_eq!(out.len(), RECORD_HEADER_BYTES + FIX_PAYLOAD_BYTES);
        // len field.
        assert_eq!(&out[..4], &(FIX_PAYLOAD_BYTES as u32).to_le_bytes());
        // crc over the payload.
        assert_eq!(&out[4..8], &crc32(&out[8..]).to_le_bytes());
        // payload: kind, id LE, then t/x/y as LE f64 bits.
        assert_eq!(out[8], KIND_APPEND_FIX);
        assert_eq!(&out[9..17], &0x0102_0304u64.to_le_bytes());
        assert_eq!(&out[17..25], &1.0f64.to_le_bytes());
        assert_eq!(&out[25..33], &2.0f64.to_le_bytes());
        assert_eq!(&out[33..41], &3.0f64.to_le_bytes());
    }

    #[test]
    fn rotation_produces_multiple_segments() -> Result<(), Box<dyn std::error::Error>> {
        let storage = Arc::new(MemStorage::new());
        let opts = WalOptions { segment_max_bytes: 128, ..WalOptions::default() };
        let mut wal = Wal::open(storage.clone(), &wal_dir(), opts)?;
        for i in 0..20 {
            wal.append(1, &fix(i as f64))?;
        }
        let (records, summary) = replay_dir(storage.as_ref(), &wal_dir())?;
        assert_eq!(records.len(), 20);
        assert!(summary.segments > 1, "expected rotation, got {} segment", summary.segments);
        // Replay preserves append order across segments.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.fix.t.as_secs(), i as f64);
        }
        Ok(())
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() -> Result<(), Box<dyn std::error::Error>> {
        let storage = Arc::new(MemStorage::new());
        let mut wal = Wal::open(storage.clone(), &wal_dir(), WalOptions::default())?;
        for i in 0..5 {
            wal.append(1, &fix(i as f64))?;
        }
        let seg = segment_path(&wal_dir(), 1);
        let len = storage.file(&seg).ok_or("missing segment")?.len();
        // Tear at every byte inside the final record.
        for cut in (len - RECORD_HEADER_BYTES - FIX_PAYLOAD_BYTES + 1)..len {
            let s2 = MemStorage::new();
            s2.create_dir_all(&wal_dir())?;
            let mut bytes = storage.file(&seg).ok_or("missing segment")?;
            bytes.truncate(cut);
            let mut w = s2.create(&seg)?;
            w.write_all(&bytes)?;
            let (records, summary) = replay_dir(&s2, &wal_dir())?;
            assert_eq!(records.len(), 4, "cut at {cut}");
            assert!(summary.torn_tail, "cut at {cut}");
        }
        Ok(())
    }

    #[test]
    fn bit_flip_in_payload_skips_only_that_record() -> Result<(), Box<dyn std::error::Error>> {
        let storage = Arc::new(MemStorage::new());
        let mut wal = Wal::open(storage.clone(), &wal_dir(), WalOptions::default())?;
        for i in 0..5 {
            wal.append(1, &fix(i as f64))?;
        }
        let seg = segment_path(&wal_dir(), 1);
        // Flip a byte inside record 2's payload.
        let off = SEGMENT_MAGIC.len()
            + 2 * (RECORD_HEADER_BYTES + FIX_PAYLOAD_BYTES)
            + RECORD_HEADER_BYTES
            + 10;
        assert!(storage.corrupt_byte(&seg, off, 0x40));
        let (records, summary) = replay_dir(storage.as_ref(), &wal_dir())?;
        assert_eq!(records.len(), 4);
        assert_eq!(summary.corrupt_skipped, 1);
        assert!(!summary.torn_tail);
        let ts: Vec<f64> = records.iter().map(|r| r.fix.t.as_secs()).collect();
        assert_eq!(ts, vec![0.0, 1.0, 3.0, 4.0]);
        Ok(())
    }

    #[test]
    fn implausible_length_stops_the_scan() -> Result<(), Box<dyn std::error::Error>> {
        let storage = Arc::new(MemStorage::new());
        let mut wal = Wal::open(storage.clone(), &wal_dir(), WalOptions::default())?;
        for i in 0..3 {
            wal.append(1, &fix(i as f64))?;
        }
        let seg = segment_path(&wal_dir(), 1);
        // Blow up record 1's length field (offset of its high byte).
        let off = SEGMENT_MAGIC.len() + (RECORD_HEADER_BYTES + FIX_PAYLOAD_BYTES) + 3;
        assert!(storage.corrupt_byte(&seg, off, 0xFF));
        let (records, summary) = replay_dir(storage.as_ref(), &wal_dir())?;
        assert_eq!(records.len(), 1);
        assert!(summary.torn_tail);
        Ok(())
    }

    #[test]
    fn reopen_never_appends_to_an_existing_segment() -> Result<(), Box<dyn std::error::Error>> {
        let storage = Arc::new(MemStorage::new());
        let mut wal = Wal::open(storage.clone(), &wal_dir(), WalOptions::default())?;
        wal.append(1, &fix(0.0))?;
        drop(wal);
        let mut wal = Wal::open(storage.clone(), &wal_dir(), WalOptions::default())?;
        wal.append(1, &fix(1.0))?;
        let paths = storage.file_paths();
        assert_eq!(paths.len(), 2, "two segments expected: {paths:?}");
        let (records, _) = replay_dir(storage.as_ref(), &wal_dir())?;
        assert_eq!(records.len(), 2);
        Ok(())
    }

    #[test]
    fn truncate_clears_all_segments() -> Result<(), Box<dyn std::error::Error>> {
        let storage = Arc::new(MemStorage::new());
        let mut wal = Wal::open(storage.clone(), &wal_dir(), WalOptions::default())?;
        for i in 0..4 {
            wal.append(1, &fix(i as f64))?;
        }
        wal.truncate()?;
        let (records, summary) = replay_dir(storage.as_ref(), &wal_dir())?;
        assert!(records.is_empty());
        assert_eq!(summary.segments, 0);
        // The log is still usable after truncation.
        wal.append(1, &fix(9.0))?;
        let (records, _) = replay_dir(storage.as_ref(), &wal_dir())?;
        assert_eq!(records.len(), 1);
        Ok(())
    }

    #[test]
    fn missing_directory_replays_empty() -> Result<(), Box<dyn std::error::Error>> {
        let (records, summary) =
            replay_dir(&MemStorage::new(), Path::new("/nope"))?;
        assert!(records.is_empty());
        assert_eq!(summary, ReplaySummary::default());
        Ok(())
    }

    #[test]
    fn sync_policy_every_n_batches_fsyncs() -> Result<(), Box<dyn std::error::Error>> {
        let storage = Arc::new(MemStorage::new());
        let opts = WalOptions { sync: SyncPolicy::EveryN(4), ..WalOptions::default() };
        let mut wal = Wal::open(storage.clone(), &wal_dir(), opts)?;
        let before = traj_obs::counter!("store", "wal_fsyncs").get();
        for i in 0..8 {
            wal.append(1, &fix(i as f64))?;
        }
        if traj_obs::metrics_enabled() {
            let after = traj_obs::counter!("store", "wal_fsyncs").get();
            assert!(after - before <= 2 + 1, "fsyncs {before} -> {after}");
        }
        // Data still replays in full.
        let (records, _) = replay_dir(storage.as_ref(), &wal_dir())?;
        assert_eq!(records.len(), 8);
        Ok(())
    }
}
