//! A static STR-packed R-tree.
//!
//! Sort-Tile-Recursive (STR) bulk loading builds a balanced R-tree in
//! `O(n log n)`: leaf entries are sorted by x-centre into vertical
//! slices, each slice sorted by y-centre and packed into nodes of fanout
//! `M`; the node rectangles are then packed recursively the same way.
//! The structure is immutable — the right trade-off for a store whose
//! index is rebuilt on demand over committed (compressed) history.
//!
//! The tree is generic over its payload; `traj-store` instantiates it
//! with trajectory-segment references, and the query layer verifies
//! candidates exactly, so results are identical to a full scan.

use traj_geom::{Bbox, Point2};

const FANOUT: usize = 16;

#[derive(Debug, Clone)]
struct Node {
    bbox: Bbox,
    /// Children: either inner node indices or leaf payload indices.
    children: Vec<u32>,
    is_leaf: bool,
}

/// An immutable, bulk-loaded R-tree over `(Bbox, T)` entries.
#[derive(Debug, Clone)]
pub struct StrTree<T> {
    payloads: Vec<T>,
    boxes: Vec<Bbox>,
    nodes: Vec<Node>,
    root: Option<u32>,
}

impl<T> StrTree<T> {
    /// Bulk-loads the tree from `(bbox, payload)` entries.
    pub fn build(entries: Vec<(Bbox, T)>) -> Self {
        let mut payloads = Vec::with_capacity(entries.len());
        let mut boxes = Vec::with_capacity(entries.len());
        for (b, p) in entries {
            boxes.push(b);
            payloads.push(p);
        }
        let mut tree = StrTree { payloads, boxes, nodes: Vec::new(), root: None };
        if tree.boxes.is_empty() {
            return tree;
        }

        // Pack leaf level.
        let ids: Vec<u32> = (0..tree.boxes.len() as u32).collect();
        let level = tree.pack_level(ids, true);
        // Pack inner levels until a single root remains.
        let mut level = level;
        while level.len() > 1 {
            level = tree.pack_level(level, false);
        }
        tree.root = Some(level[0]);
        tree
    }

    /// Sort-Tile-Recursive packing of one level; `items` are payload ids
    /// (leaf) or node ids (inner). Returns the created node ids.
    fn pack_level(&mut self, mut items: Vec<u32>, is_leaf: bool) -> Vec<u32> {
        let bbox_of = |tree: &StrTree<T>, id: u32| -> Bbox {
            if is_leaf {
                tree.boxes[id as usize]
            } else {
                tree.nodes[id as usize].bbox
            }
        };
        let center = |tree: &StrTree<T>, id: u32| -> Point2 { bbox_of(tree, id).center() };

        let n = items.len();
        let node_count = n.div_ceil(FANOUT);
        let slice_count = (node_count as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(slice_count);

        items.sort_by(|&a, &b| center(self, a).x.total_cmp(&center(self, b).x));

        let mut created = Vec::with_capacity(node_count);
        for slice in items.chunks(slice_size) {
            let mut slice: Vec<u32> = slice.to_vec();
            slice.sort_by(|&a, &b| center(self, a).y.total_cmp(&center(self, b).y));
            for group in slice.chunks(FANOUT) {
                let bbox = group
                    .iter()
                    .fold(Bbox::EMPTY, |acc, &id| acc.union(&bbox_of(self, id)));
                let node = Node { bbox, children: group.to_vec(), is_leaf };
                self.nodes.push(node);
                created.push(self.nodes.len() as u32 - 1);
            }
        }
        created
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// Whether the tree stores no entries.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// All payloads whose bounding box intersects `query`.
    pub fn search(&self, query: &Bbox) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_in(query, |p| out.push(p));
        out
    }

    /// Visits every payload whose box intersects `query` (allocation-free
    /// variant of [`StrTree::search`] for hot paths).
    pub fn for_each_in<'a>(&'a self, query: &Bbox, mut f: impl FnMut(&'a T)) {
        let Some(root) = self.root else { return };
        // Node visits accumulate in a stack local and flush once per
        // query, keeping the traversal free of shared-state traffic.
        let mut visited = 0u64;
        let mut stack = vec![root];
        while let Some(nid) = stack.pop() {
            visited += 1;
            let node = &self.nodes[nid as usize];
            if !node.bbox.intersects(query) {
                continue;
            }
            if node.is_leaf {
                for &pid in &node.children {
                    if self.boxes[pid as usize].intersects(query) {
                        f(&self.payloads[pid as usize]);
                    }
                }
            } else {
                stack.extend(&node.children);
            }
        }
        traj_obs::counter!("store", "rtree_node_visits").add(visited);
        traj_obs::histogram!("store", "rtree_nodes_per_query").record(visited);
    }

    /// Height of the tree (0 for empty).
    pub fn height(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut h = 1;
        let mut nid = root;
        loop {
            let node = &self.nodes[nid as usize];
            if node.is_leaf {
                return h;
            }
            nid = node.children[0];
            h += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes(n: usize) -> Vec<(Bbox, usize)> {
        // Deterministic pseudo-random layout.
        (0..n)
            .map(|i| {
                let x = ((i * 7919) % 10_000) as f64;
                let y = ((i * 104_729) % 10_000) as f64;
                let b = Bbox::from_corners(
                    Point2::new(x, y),
                    Point2::new(x + 50.0, y + 30.0),
                );
                (b, i)
            })
            .collect()
    }

    fn scan(entries: &[(Bbox, usize)], q: &Bbox) -> Vec<usize> {
        let mut v: Vec<usize> = entries
            .iter()
            .filter(|(b, _)| b.intersects(q))
            .map(|(_, i)| *i)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn search_equals_linear_scan() {
        let entries = boxes(1000);
        let tree = StrTree::build(entries.clone());
        for i in 0..30 {
            let cx = (i * 331) as f64;
            let q = Bbox::from_corners(
                Point2::new(cx, cx / 2.0),
                Point2::new(cx + 800.0, cx / 2.0 + 800.0),
            );
            let mut got: Vec<usize> = tree.search(&q).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, scan(&entries, &q), "query {i}");
        }
    }

    #[test]
    fn for_each_matches_search() {
        let entries = boxes(500);
        let tree = StrTree::build(entries);
        let q = Bbox::from_corners(Point2::new(1000.0, 1000.0), Point2::new(4000.0, 4000.0));
        let mut a: Vec<usize> = tree.search(&q).into_iter().copied().collect();
        let mut b: Vec<usize> = Vec::new();
        tree.for_each_in(&q, |&i| b.push(i));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_tree() {
        let tree: StrTree<u8> = StrTree::build(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree
            .search(&Bbox::from_corners(Point2::ORIGIN, Point2::new(1.0, 1.0)))
            .is_empty());
    }

    #[test]
    fn single_entry() {
        let b = Bbox::from_corners(Point2::new(5.0, 5.0), Point2::new(6.0, 6.0));
        let tree = StrTree::build(vec![(b, 42u32)]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.search(&b), vec![&42]);
        let miss = Bbox::from_corners(Point2::new(10.0, 10.0), Point2::new(11.0, 11.0));
        assert!(tree.search(&miss).is_empty());
    }

    #[test]
    fn height_is_logarithmic() {
        let tree = StrTree::build(boxes(4096));
        // fanout 16 → height ≈ log₁₆(4096) = 3.
        assert!(tree.height() <= 4, "height {}", tree.height());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn queries_record_node_visits() {
        let tree = StrTree::build(boxes(1000));
        let visits_before = traj_obs::counter!("store", "rtree_node_visits").get();
        let queries_before =
            traj_obs::histogram!("store", "rtree_nodes_per_query").count();
        let q = Bbox::from_corners(Point2::new(0.0, 0.0), Point2::new(5000.0, 5000.0));
        let _ = tree.search(&q);
        let visits_after = traj_obs::counter!("store", "rtree_node_visits").get();
        let queries_after =
            traj_obs::histogram!("store", "rtree_nodes_per_query").count();
        // At minimum the root is visited; deltas are monotone because the
        // registry is global and tests run concurrently.
        assert!(visits_after > visits_before);
        assert!(queries_after > queries_before);
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let tree = StrTree::build(boxes(200));
        let q = Bbox::from_corners(Point2::new(-5000.0, -5000.0), Point2::new(-4000.0, -4000.0));
        assert!(tree.search(&q).is_empty());
    }
}
