//! Query surface over the moving-object store.
//!
//! The paper's target applications "determine locations that objects have
//! had, have or will have" (§1): position-at-time lookups, space × time
//! window queries, and k-nearest-neighbour snapshots. All queries run on
//! the *stored* (possibly compressed) trajectories; with a compressed
//! store the answers are within the configured error budget of the raw
//! data at sample instants (see `traj-compress`).

use traj_geom::{Bbox, Point2, Segment};
use traj_model::{Fix, Timestamp};

use crate::index::segment_enters_window;
use crate::rtree::StrTree;
use crate::store::{MovingObjectStore, ObjectId};

/// Bumps the per-kind query counter (`store.queries{kind=…}`).
#[inline]
pub(crate) fn count_query(kind: &'static str) {
    traj_obs::registry().counter_with("store", "queries", &[("kind", kind)]).inc();
}

/// A spatiotemporal query window: a rectangle during a time interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryWindow {
    /// Spatial rectangle.
    pub bbox: Bbox,
    /// Interval start (inclusive).
    pub t0: Timestamp,
    /// Interval end (inclusive).
    pub t1: Timestamp,
}

impl QueryWindow {
    /// Convenience constructor from corner coordinates and seconds.
    pub fn new(min: Point2, max: Point2, t0: f64, t1: f64) -> Self {
        QueryWindow {
            bbox: Bbox::from_corners(min, max),
            t0: Timestamp::from_secs(t0),
            t1: Timestamp::from_secs(t1),
        }
    }
}

/// Position of object `id` at time `t`, linearly interpolated on its
/// stored trajectory; `None` for unknown objects or instants outside the
/// stored span.
pub fn position_of(store: &MovingObjectStore, id: ObjectId, t: Timestamp) -> Option<Point2> {
    count_query("position_at");
    let fixes = store.stored_fixes(id)?;
    position_on(&fixes, t)
}

fn position_on(fixes: &[Fix], t: Timestamp) -> Option<Point2> {
    let first = fixes.first()?;
    let last = fixes.last()?;
    if t < first.t || t > last.t {
        return None;
    }
    let i = fixes.partition_point(|f| f.t <= t);
    if i == 0 {
        return Some(first.pos);
    }
    if i == fixes.len() {
        return Some(last.pos);
    }
    Some(Fix::interpolate(&fixes[i - 1], &fixes[i], t))
}

/// Ids of objects whose stored motion enters `window.bbox` during the
/// window's time interval (full scan; see
/// [`crate::GridIndex::objects_in_window`] for the indexed path).
pub fn objects_in_window(store: &MovingObjectStore, window: &QueryWindow) -> Vec<ObjectId> {
    count_query("window_scan");
    crate::index::scan_objects_in_window(store, window)
}

/// Positions of every object whose stored span covers `t` — the
/// "where is everybody right now" snapshot, ascending by id.
pub fn snapshot_at(store: &MovingObjectStore, t: Timestamp) -> Vec<(ObjectId, Point2)> {
    count_query("snapshot");
    store
        .object_ids()
        .filter_map(|id| position_of(store, id, t).map(|p| (id, p)))
        .collect()
}

/// The `k` objects nearest to `query` at instant `t`, as
/// `(id, distance)` pairs sorted by distance (objects whose stored span
/// does not cover `t` are skipped).
pub fn knn_at(
    store: &MovingObjectStore,
    t: Timestamp,
    query: Point2,
    k: usize,
) -> Vec<(ObjectId, f64)> {
    count_query("knn");
    let mut candidates: Vec<(ObjectId, f64)> = store
        .object_ids()
        .filter_map(|id| position_of(store, id, t).map(|p| (id, p.distance(query))))
        .collect();
    candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
    candidates.truncate(k);
    candidates
}

/// The stored motion of every object clipped to the query's time
/// interval, for objects that enter the window — the "give me the rush-
/// hour traces through this junction" query of the paper's §1.
///
/// Returns `(id, sliced trajectory)` pairs, ascending by id. Slices have
/// interpolated boundary fixes, so they span exactly the overlap of the
/// object's history with `[window.t0, window.t1]`.
pub fn trajectories_in_window(
    store: &MovingObjectStore,
    window: &QueryWindow,
) -> Vec<(ObjectId, traj_model::Trajectory)> {
    count_query("window_trajectories");
    objects_in_window(store, window)
        .into_iter()
        .filter_map(|id| {
            let traj = store.trajectory(id)?;
            let slice = traj_model::ops::slice_time(&traj, window.t0, window.t1)?;
            Some((id, slice))
        })
        .collect()
}

/// Builds an [`StrTree`] over all stored segments of the store. Payload:
/// `(object, a, b)` so query verification can clip by time exactly.
pub fn build_segment_rtree(store: &MovingObjectStore) -> StrTree<(ObjectId, Fix, Fix)> {
    let mut entries = Vec::new();
    for id in store.object_ids() {
        let Some(fixes) = store.stored_fixes(id) else { continue };
        if fixes.len() == 1 {
            entries.push((Bbox::from_point(fixes[0].pos), (id, fixes[0], fixes[0])));
        }
        for w in fixes.windows(2) {
            entries.push((
                Bbox::from_segment(&Segment::new(w[0].pos, w[1].pos)),
                (id, w[0], w[1]),
            ));
        }
    }
    StrTree::build(entries)
}

/// Window query through a prebuilt segment R-tree; exact (candidates are
/// verified by time-clipped intersection) and equivalent to
/// [`objects_in_window`].
pub fn rtree_objects_in_window(
    tree: &StrTree<(ObjectId, Fix, Fix)>,
    window: &QueryWindow,
) -> Vec<ObjectId> {
    count_query("window_rtree");
    let mut hits = std::collections::HashSet::new();
    tree.for_each_in(&window.bbox, |(id, a, b)| {
        if !hits.contains(id) && segment_enters_window(a, b, window) {
            hits.insert(*id);
        }
    });
    let mut out: Vec<ObjectId> = hits.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::IngestMode;
    use traj_model::Trajectory;

    fn demo_store() -> MovingObjectStore {
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        // Three cars on parallel east-west roads, staggered in y.
        for (id, y) in [(1u64, 0.0), (2, 1000.0), (3, 2000.0)] {
            s.insert_trajectory(
                id,
                &Trajectory::from_triples(
                    (0..60).map(|i| (i as f64 * 10.0, i as f64 * 100.0, y)),
                )
                .unwrap(),
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn position_of_interpolates() {
        let s = demo_store();
        let p = position_of(&s, 1, Timestamp::from_secs(15.0)).unwrap();
        assert_eq!(p, Point2::new(150.0, 0.0));
        assert!(position_of(&s, 1, Timestamp::from_secs(-1.0)).is_none());
        assert!(position_of(&s, 99, Timestamp::from_secs(0.0)).is_none());
    }

    #[test]
    fn window_query_scan() {
        let s = demo_store();
        // Around x≈3000 at the right time, lane y=1000 only.
        let w = QueryWindow::new(Point2::new(2900.0, 900.0), Point2::new(3100.0, 1100.0), 250.0, 350.0);
        assert_eq!(objects_in_window(&s, &w), vec![2]);
    }

    #[test]
    fn snapshot_lists_covered_objects_only() {
        let mut s = demo_store();
        s.insert_trajectory(
            9,
            &Trajectory::from_triples([(5000.0, 0.0, 0.0), (5010.0, 1.0, 0.0)]).unwrap(),
        )
        .unwrap();
        let snap = snapshot_at(&s, Timestamp::from_secs(300.0));
        assert_eq!(snap.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![1, 2, 3]);
        for (_, p) in snap {
            assert_eq!(p.x, 3000.0);
        }
        assert!(snapshot_at(&s, Timestamp::from_secs(-10.0)).is_empty());
    }

    #[test]
    fn knn_orders_by_distance() {
        let s = demo_store();
        // At t=300 every car is at x=3000; distances determined by lanes.
        let q = Point2::new(3000.0, 900.0);
        let knn = knn_at(&s, Timestamp::from_secs(300.0), q, 2);
        assert_eq!(knn.len(), 2);
        assert_eq!(knn[0].0, 2);
        assert!((knn[0].1 - 100.0).abs() < 1e-9);
        assert_eq!(knn[1].0, 1);
        assert!((knn[1].1 - 900.0).abs() < 1e-9);
    }

    #[test]
    fn knn_skips_objects_outside_time_span() {
        let mut s = demo_store();
        // Object 4 exists only later.
        s.insert_trajectory(
            4,
            &Trajectory::from_triples([(10_000.0, 0.0, 0.0), (10_010.0, 1.0, 0.0)]).unwrap(),
        )
        .unwrap();
        let knn = knn_at(&s, Timestamp::from_secs(300.0), Point2::ORIGIN, 10);
        assert_eq!(knn.len(), 3, "object 4 must be skipped");
    }

    #[test]
    fn trajectories_in_window_are_clipped_slices() {
        let s = demo_store();
        let w = QueryWindow::new(
            Point2::new(2000.0, -100.0),
            Point2::new(4000.0, 2100.0),
            150.0,
            450.0,
        );
        let slices = trajectories_in_window(&s, &w);
        assert_eq!(slices.len(), 3, "all three lanes pass through");
        for (id, slice) in &slices {
            assert!(slice.start_time() >= w.t0, "object {id}");
            assert!(slice.end_time() <= w.t1, "object {id}");
            // The slice agrees with the full stored trajectory.
            let full = s.trajectory(*id).unwrap();
            let mid = slice.start_time().lerp(slice.end_time(), 0.5);
            let a = traj_model::interp::position_at(slice, mid).unwrap();
            let b = traj_model::interp::position_at(&full, mid).unwrap();
            assert!(a.distance(b) < 1e-6);
        }
    }

    #[test]
    fn rtree_window_equals_scan() {
        let s = demo_store();
        let tree = build_segment_rtree(&s);
        for i in 0..25 {
            let cx = i as f64 * 230.0;
            let w = QueryWindow::new(
                Point2::new(cx, -100.0),
                Point2::new(cx + 500.0, 2100.0),
                i as f64 * 25.0,
                i as f64 * 25.0 + 120.0,
            );
            assert_eq!(
                rtree_objects_in_window(&tree, &w),
                objects_in_window(&s, &w),
                "window {i}"
            );
        }
    }

    #[test]
    fn grid_rtree_and_scan_agree_on_compressed_store() {
        // End-to-end: ingest with compression, query through all three
        // paths.
        let mut s = MovingObjectStore::new(IngestMode::Compressed {
            epsilon: 30.0,
            speed_epsilon: None,
            max_window: 64,
        });
        for (id, phase) in [(10u64, 0.0f64), (11, 1.0), (12, 2.0)] {
            s.insert_trajectory(
                id,
                &Trajectory::from_triples((0..200).map(|i| {
                    let t = i as f64 * 10.0;
                    let x = t * 12.0;
                    let y = 500.0 * ((t / 300.0 + phase).sin());
                    (t, x, y)
                }))
                .unwrap(),
            )
            .unwrap();
        }
        let grid = crate::GridIndex::build(&s, 400.0, 200.0);
        let tree = build_segment_rtree(&s);
        for i in 0..30 {
            let cx = i as f64 * 700.0;
            let w = QueryWindow::new(
                Point2::new(cx, -600.0),
                Point2::new(cx + 900.0, 600.0),
                i as f64 * 60.0,
                i as f64 * 60.0 + 400.0,
            );
            let scan = objects_in_window(&s, &w);
            assert_eq!(grid.objects_in_window(&w), scan, "grid vs scan, window {i}");
            assert_eq!(rtree_objects_in_window(&tree, &w), scan, "rtree vs scan, window {i}");
        }
    }

    #[test]
    fn position_of_compressed_store_close_to_raw() {
        let raw_traj = Trajectory::from_triples((0..300).map(|i| {
            let t = i as f64 * 10.0;
            (t, t * 11.0, 300.0 * (t / 500.0).sin())
        }))
        .unwrap();
        let eps = 25.0;
        let mut s = MovingObjectStore::new(IngestMode::Compressed {
            epsilon: eps,
            speed_epsilon: None,
            max_window: 128,
        });
        s.insert_trajectory(1, &raw_traj).unwrap();
        // At every *sample* instant the stored answer is within eps.
        for f in raw_traj.fixes() {
            let p = position_of(&s, 1, f.t).unwrap();
            assert!(
                p.distance(f.pos) <= eps + 1e-6,
                "at {}: {} m",
                f.t,
                p.distance(f.pos)
            );
        }
    }
}
