//! Durable ingest: WAL-before-acknowledge, atomic snapshots, recovery.
//!
//! [`DurableStore`] wraps [`MovingObjectStore`] with the durability
//! contract the paper's fleet scenario (§1) needs: a reported fix that
//! has been acknowledged survives a crash. The moving parts:
//!
//! * every accepted fix is appended to the [write-ahead log](crate::wal)
//!   *before* `append` returns;
//! * [`DurableStore::snapshot`] persists the in-memory state with the
//!   atomic, checksummed writer of [`crate::persist`] and then truncates
//!   the WAL — the snapshot plus the (now empty) log always cover every
//!   acknowledged fix;
//! * [`DurableStore::open`] recovers: load the latest snapshot, replay
//!   the WAL tail over it, skip records the snapshot already covers
//!   (timestamps are strictly monotone per object, so coverage is a
//!   simple time comparison), and report torn/corrupt records instead
//!   of tripping over them.
//!
//! Why replay can double-see records: the snapshot commit point is the
//! per-file rename, but WAL truncation happens *after* all renames — a
//! crash between the two leaves a complete snapshot *and* a full log.
//! Replay dedup by timestamp makes that window harmless. The full
//! failure model is spelled out in `crates/store/README.md`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use traj_model::Fix;

use crate::persist;
use crate::storage::{FsStorage, Storage};
use crate::store::{IngestMode, MovingObjectStore, ObjectId, StoreError};
use crate::wal::{replay_dir, Wal, WalOptions};

/// Configuration of a [`DurableStore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DurableOptions {
    /// Write-ahead log tuning (segment size, fsync batching).
    pub wal: WalOptions,
}

/// What [`DurableStore::open`] found and did while recovering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Objects restored from the snapshot directory.
    pub snapshot_objects: usize,
    /// Fixes restored from the snapshot directory.
    pub snapshot_fixes: usize,
    /// WAL segment files scanned.
    pub wal_segments: usize,
    /// WAL records replayed into the store.
    pub replayed: usize,
    /// WAL records skipped because the snapshot already covered them.
    pub skipped_covered: usize,
    /// WAL records skipped as corrupt (checksum mismatch or undecodable).
    pub skipped_corrupt: usize,
    /// Whether the log ended in a torn (incomplete) record — the
    /// signature of a crash mid-append; never data loss, the torn record
    /// was by definition never acknowledged.
    pub torn_tail: bool,
}

impl RecoveryReport {
    /// Whether recovery saw any evidence of a crash or corruption.
    pub fn clean(&self) -> bool {
        self.skipped_corrupt == 0 && !self.torn_tail
    }
}

/// A [`MovingObjectStore`] with a durable ingest path.
///
/// On-disk layout under the store directory: `snapshot/<id>.csv`
/// (atomic, checksummed, written by [`DurableStore::snapshot`]) and
/// `wal/wal-<seq>.log` (the append log). See `crates/store/README.md`
/// for the byte-level formats.
///
/// ```
/// use std::sync::Arc;
/// use traj_model::Fix;
/// use traj_store::storage::MemStorage;
/// use traj_store::{DurableOptions, DurableStore, IngestMode};
///
/// let disk = Arc::new(MemStorage::new());
/// let open = |disk: &Arc<MemStorage>| {
///     DurableStore::open_with(
///         disk.clone(),
///         "/fleet".as_ref(),
///         IngestMode::Raw,
///         DurableOptions::default(),
///     )
/// };
///
/// let (mut store, _) = open(&disk).unwrap();
/// store.append(7, Fix::from_parts(0.0, 0.0, 0.0)).unwrap();
/// store.append(7, Fix::from_parts(10.0, 120.0, 0.0)).unwrap();
/// drop(store); // crash: no snapshot was ever written
///
/// let (store, report) = open(&disk).unwrap();
/// assert_eq!(report.replayed, 2); // both acknowledged fixes came back
/// assert_eq!(store.store().trajectory(7).unwrap().len(), 2);
/// ```
pub struct DurableStore {
    store: MovingObjectStore,
    wal: Wal,
    storage: Arc<dyn Storage>,
    dir: PathBuf,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Storage { path: path.to_path_buf(), source }
}

impl DurableStore {
    /// Snapshot subdirectory name under the store directory.
    pub const SNAPSHOT_DIR: &'static str = "snapshot";
    /// WAL subdirectory name under the store directory.
    pub const WAL_DIR: &'static str = "wal";

    /// Opens (and recovers) a durable store at `dir` on the real
    /// filesystem, creating the directory tree on first use.
    ///
    /// # Errors
    /// Backend I/O failures and snapshot corruption
    /// ([`StoreError::Corrupt`] — snapshot files, unlike WAL records,
    /// have no younger redundant copy, so rot there is surfaced loudly
    /// rather than skipped).
    pub fn open(
        dir: &Path,
        mode: IngestMode,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        DurableStore::open_with(Arc::new(FsStorage), dir, mode, opts)
    }

    /// [`DurableStore::open`] over an injectable [`Storage`] backend.
    ///
    /// # Errors
    /// Like [`DurableStore::open`].
    pub fn open_with(
        storage: Arc<dyn Storage>,
        dir: &Path,
        mode: IngestMode,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let _span = traj_obs::span!("store.recover");
        let snap_dir = dir.join(Self::SNAPSHOT_DIR);
        let wal_dir = dir.join(Self::WAL_DIR);
        storage.create_dir_all(&snap_dir).map_err(|e| io_err(&snap_dir, e))?;

        let mut report = RecoveryReport::default();

        // 1. Sweep temp files an interrupted snapshot left behind; their
        //    contents were never published.
        for path in storage.list(&snap_dir).map_err(|e| io_err(&snap_dir, e))? {
            if path.extension().is_some_and(|e| e == "tmp") {
                storage.remove_file(&path).map_err(|e| io_err(&path, e))?;
            }
        }

        // 2. Load the snapshot: verified, installed without
        //    re-compression, then rebased onto the configured mode.
        let loaded = persist::load_dir_with(storage.as_ref(), &snap_dir)?;
        let mut store = MovingObjectStore::new(mode);
        for id in loaded.object_ids().collect::<Vec<_>>() {
            let Some(fixes) = loaded.stored_fixes(id) else { continue };
            report.snapshot_objects += 1;
            report.snapshot_fixes += fixes.len();
            store.restore_trajectory(id, fixes)?;
        }

        // 3. Replay the WAL tail. Records at or before an object's
        //    restored end are already covered by the snapshot.
        let (records, summary) = replay_dir(storage.as_ref(), &wal_dir)?;
        report.wal_segments = summary.segments;
        report.skipped_corrupt = summary.corrupt_skipped;
        report.torn_tail = summary.torn_tail;
        for rec in records {
            let covered = store.latest(rec.id).is_some_and(|l| l.t >= rec.fix.t);
            if covered {
                report.skipped_covered += 1;
            } else {
                store.append(rec.id, rec.fix)?;
                report.replayed += 1;
            }
        }
        traj_obs::counter!("store", "recovery_replayed").add(report.replayed as u64);
        traj_obs::counter!("store", "recovery_skipped")
            .add((report.skipped_covered + report.skipped_corrupt) as u64);

        // 4. Open the log for appending (always a fresh segment, so a
        //    torn tail can never sit in front of new records).
        let wal = Wal::open(storage.clone(), &wal_dir, opts.wal)?;
        Ok((DurableStore { store, wal, storage, dir: dir.to_path_buf() }, report))
    }

    /// The store directory this instance persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Read access to the in-memory store (queries, stats, indexes).
    pub fn store(&self) -> &MovingObjectStore {
        &self.store
    }

    /// Appends a reported fix durably: validated, logged (durable per
    /// the configured [`crate::wal::SyncPolicy`]), then applied to the
    /// in-memory store. When this returns `Ok`, the fix is acknowledged:
    /// it will survive a crash.
    ///
    /// # Errors
    /// Rejects invalid fixes like [`MovingObjectStore::append`]
    /// (nothing is logged for them) and propagates WAL write failures
    /// (the fix is then neither durable nor applied).
    pub fn append(&mut self, id: ObjectId, fix: Fix) -> Result<(), StoreError> {
        // Validate first: the WAL must only ever hold accepted fixes.
        if !fix.is_finite() {
            return Err(StoreError::Model(traj_model::ModelError::NonFinite { index: 0 }));
        }
        if let Some(last) = self.store.latest(id) {
            if last.t >= fix.t {
                return Err(StoreError::Model(traj_model::ModelError::NonMonotonicTime {
                    index: 0,
                }));
            }
        }
        self.wal.append(id, &fix)?;
        self.store.append(id, fix)
    }

    /// Forces all logged fixes down to durable storage — the batch
    /// commit point under [`crate::wal::SyncPolicy::EveryN`] or
    /// [`crate::wal::SyncPolicy::Manual`].
    ///
    /// # Errors
    /// Propagates the backend's sync failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Persists the current state as an atomic, checksummed snapshot and
    /// truncates the WAL. Returns the number of object files written.
    ///
    /// Crash safety: each object file is published by rename; the WAL is
    /// deleted only after every file (and the directory entry) is
    /// durable. A crash anywhere in between leaves snapshot + log
    /// together covering every acknowledged fix, which recovery
    /// reconciles by timestamp.
    ///
    /// # Errors
    /// Backend I/O failures; the WAL is left untouched unless every
    /// snapshot file made it to disk.
    pub fn snapshot(&mut self) -> Result<usize, StoreError> {
        let _span = traj_obs::span!("store.snapshot");
        let snap_dir = self.dir.join(Self::SNAPSHOT_DIR);
        let written = persist::save_dir_with(self.storage.as_ref(), &self.store, &snap_dir)?;
        self.wal.truncate()?;
        Ok(written)
    }

    /// Offline compaction of the committed history (see
    /// [`MovingObjectStore::compact`]); call [`DurableStore::snapshot`]
    /// afterwards to persist the smaller state. Until then the disk
    /// still holds the uncompacted (superset) data — conservative, never
    /// lossy.
    pub fn compact<C: traj_compress::Compressor + ?Sized>(&mut self, compressor: &C) -> usize {
        self.store.compact(compressor)
    }

    /// Consumes the handle, returning the in-memory store.
    pub fn into_store(self) -> MovingObjectStore {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::wal::SyncPolicy;

    fn open_mem(
        disk: &Arc<MemStorage>,
        mode: IngestMode,
    ) -> (DurableStore, RecoveryReport) {
        DurableStore::open_with(disk.clone(), Path::new("/db"), mode, DurableOptions::default())
            .unwrap()
    }

    fn fix(t: f64) -> Fix {
        Fix::from_parts(t, t * 7.0, (t * 0.1).sin() * 100.0)
    }

    #[test]
    fn wal_only_recovery_restores_everything() {
        let disk = Arc::new(MemStorage::new());
        let (mut s, report) = open_mem(&disk, IngestMode::Raw);
        assert_eq!(report, RecoveryReport::default());
        for i in 0..30 {
            s.append(1, fix(i as f64)).unwrap();
            s.append(2, fix(i as f64 + 0.5)).unwrap();
        }
        drop(s); // crash before any snapshot

        let (s, report) = open_mem(&disk, IngestMode::Raw);
        assert_eq!(report.replayed, 60);
        assert_eq!(report.snapshot_objects, 0);
        assert!(report.clean());
        assert_eq!(s.store().trajectory(1).unwrap().len(), 30);
        assert_eq!(s.store().trajectory(2).unwrap().len(), 30);
    }

    #[test]
    fn snapshot_truncates_wal_and_roundtrips() {
        let disk = Arc::new(MemStorage::new());
        let (mut s, _) = open_mem(&disk, IngestMode::Raw);
        for i in 0..20 {
            s.append(9, fix(i as f64)).unwrap();
        }
        assert_eq!(s.snapshot().unwrap(), 1);
        // Post-snapshot appends land in the WAL only.
        for i in 20..25 {
            s.append(9, fix(i as f64)).unwrap();
        }
        drop(s);

        let (s, report) = open_mem(&disk, IngestMode::Raw);
        assert_eq!(report.snapshot_objects, 1);
        assert_eq!(report.snapshot_fixes, 20);
        assert_eq!(report.replayed, 5);
        assert_eq!(report.skipped_covered, 0);
        assert_eq!(s.store().trajectory(9).unwrap().len(), 25);
    }

    #[test]
    fn replay_skips_records_the_snapshot_covers() {
        // Simulate the crash window between snapshot publication and
        // WAL truncation: write the snapshot, then put the log back.
        let disk = Arc::new(MemStorage::new());
        let (mut s, _) = open_mem(&disk, IngestMode::Raw);
        for i in 0..10 {
            s.append(4, fix(i as f64)).unwrap();
        }
        // Keep a copy of the WAL segment, snapshot, then restore the log
        // as if truncation never happened.
        let wal_files: Vec<_> = disk
            .file_paths()
            .into_iter()
            .filter(|p| p.to_string_lossy().contains("wal-"))
            .map(|p| (p.clone(), disk.file(&p).unwrap()))
            .collect();
        assert!(!wal_files.is_empty());
        s.snapshot().unwrap();
        drop(s);
        for (path, bytes) in wal_files {
            let mut w = disk.create(&path).unwrap();
            w.write_all(&bytes).unwrap();
        }

        let (s, report) = open_mem(&disk, IngestMode::Raw);
        assert_eq!(report.skipped_covered, 10, "all log records were in the snapshot");
        assert_eq!(report.replayed, 0);
        assert_eq!(s.store().trajectory(4).unwrap().len(), 10);
    }

    #[test]
    fn compressed_mode_recovers_within_budget_and_keeps_compressing() {
        let mode = IngestMode::Compressed { epsilon: 40.0, speed_epsilon: None, max_window: 32 };
        let disk = Arc::new(MemStorage::new());
        let (mut s, _) = open_mem(&disk, mode);
        for i in 0..100 {
            s.append(1, fix(i as f64 * 10.0)).unwrap();
        }
        let stored_before = s.store().stats().stored_points;
        assert!(stored_before < 100, "ingest compresses");
        s.snapshot().unwrap();
        for i in 100..140 {
            s.append(1, fix(i as f64 * 10.0)).unwrap();
        }
        drop(s);

        let (s, report) = open_mem(&disk, mode);
        assert_eq!(report.replayed, 40);
        // The recovered store spans the full acknowledged time range.
        let t = s.store().trajectory(1).unwrap();
        assert_eq!(t.end_time().as_secs(), 139.0 * 10.0);
        // And the snapshot part was not re-compressed on load (its
        // stored prefix is intact).
        assert!(s.store().stats().stored_points >= stored_before);
    }

    #[test]
    fn manual_sync_policy_appends_then_syncs() {
        let disk = Arc::new(MemStorage::new());
        let opts = DurableOptions {
            wal: WalOptions { sync: SyncPolicy::Manual, ..WalOptions::default() },
        };
        let (mut s, _) =
            DurableStore::open_with(disk.clone(), Path::new("/db"), IngestMode::Raw, opts)
                .unwrap();
        for i in 0..5 {
            s.append(1, fix(i as f64)).unwrap();
        }
        s.sync().unwrap();
        drop(s);
        let (s, report) = open_mem(&disk, IngestMode::Raw);
        assert_eq!(report.replayed, 5);
        assert_eq!(s.store().len(), 1);
    }

    #[test]
    fn rejected_fixes_never_reach_the_wal() {
        let disk = Arc::new(MemStorage::new());
        let (mut s, _) = open_mem(&disk, IngestMode::Raw);
        s.append(1, fix(10.0)).unwrap();
        assert!(s.append(1, fix(5.0)).is_err(), "stale fix rejected");
        assert!(s.append(1, Fix::from_parts(f64::NAN, 0.0, 0.0)).is_err());
        drop(s);
        let (_, report) = open_mem(&disk, IngestMode::Raw);
        assert_eq!(report.replayed, 1, "only the accepted fix was logged");
    }

    #[test]
    fn corrupt_snapshot_fails_loudly() {
        let disk = Arc::new(MemStorage::new());
        let (mut s, _) = open_mem(&disk, IngestMode::Raw);
        for i in 0..5 {
            s.append(3, fix(i as f64)).unwrap();
        }
        s.snapshot().unwrap();
        drop(s);
        let snap = Path::new("/db/snapshot/3.csv");
        let n = disk.file(snap).unwrap().len();
        assert!(disk.corrupt_byte(snap, n / 2, 0x08));
        let err = DurableStore::open_with(
            disk.clone(),
            Path::new("/db"),
            IngestMode::Raw,
            DurableOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }
}
