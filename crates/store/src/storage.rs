//! Injectable storage backend for the durability layer.
//!
//! Everything the write-ahead log ([`crate::wal`]) and the snapshot
//! writer ([`crate::persist`]) do to a disk goes through the [`Storage`]
//! trait, so the same code runs against the real filesystem
//! ([`FsStorage`]) and against an in-memory double ([`MemStorage`]) that
//! can tear writes at an exact byte offset, flip bits, and refuse all
//! further I/O — the crash model the fault-injection tests sweep over
//! (`crates/store/tests/durability.rs`).
//!
//! The fault model of [`MemStorage`]:
//!
//! * every byte written through [`StorageWriter::write_all`] consumes the
//!   *write budget*; the write that would exceed it lands only its
//!   allowed prefix (a torn write) and fails, and every subsequent
//!   operation fails too — the process is "dead" until
//!   [`MemStorage::lift_faults`] simulates the restart;
//! * renames are atomic and free (metadata, not data), matching POSIX
//!   `rename(2)` semantics on a journaling filesystem;
//! * [`MemStorage::corrupt_byte`] models at-rest bit rot;
//! * every file tracks its *synced length* — the prefix an
//!   [`StorageWriter::sync`] has made durable — and
//!   [`MemStorage::drop_unsynced`] models a power loss that empties the
//!   page cache: bytes written but never fsynced vanish. This is the
//!   model the group-commit ack-after-fsync tests sweep over.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
///
/// This is the checksum used by both the WAL record header and the
/// snapshot trailer (see `crates/store/README.md` for the byte layout).
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// A sequential writer into one storage object (file).
///
/// `Send` so a WAL (and the durable store owning it) can be handed to a
/// dedicated shard worker thread; a writer is only ever *used* by one
/// thread at a time.
pub trait StorageWriter: Send {
    /// Appends all of `buf` to the object.
    ///
    /// # Errors
    /// Fails on the backend's I/O errors; a fault-injecting backend may
    /// persist a *prefix* of `buf` before failing (a torn write).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Forces written data down to durable storage (`fsync`).
    ///
    /// # Errors
    /// Propagates the backend's sync failure.
    fn sync(&mut self) -> io::Result<()>;
}

/// Backend filesystem operations used by the durability layer.
///
/// Implementations must make [`Storage::rename`] atomic: after a crash
/// either the old or the new name is visible, never a half-state — this
/// is the commit point of snapshot publication.
pub trait Storage: Send + Sync {
    /// Reads the entire object at `path`.
    ///
    /// # Errors
    /// `NotFound` if the object does not exist, plus backend failures.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Lists the objects directly under `dir`, sorted by path.
    ///
    /// # Errors
    /// `NotFound` if the directory does not exist.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Creates `dir` and all missing parents.
    ///
    /// # Errors
    /// Propagates backend failures; an existing directory is not an
    /// error.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Creates (truncating) the object at `path` for writing.
    ///
    /// # Errors
    /// Propagates backend failures.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageWriter>>;

    /// Atomically renames `from` to `to`, replacing any existing `to`.
    ///
    /// # Errors
    /// `NotFound` if `from` does not exist, plus backend failures.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the object at `path`.
    ///
    /// # Errors
    /// `NotFound` if it does not exist.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Whether an object or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Flushes directory metadata (created/renamed/removed entries) for
    /// `dir` down to durable storage.
    ///
    /// # Errors
    /// Propagates backend failures.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------

/// [`Storage`] over `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStorage;

struct FsWriter(std::fs::File);

impl StorageWriter for FsWriter {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Storage for FsStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> =
            std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageWriter>> {
        Ok(Box::new(FsWriter(std::fs::File::create(path)?)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Windows cannot open directories as files; the rename itself is
        // already journaled there, so skipping is acceptable.
        #[cfg(unix)]
        {
            std::fs::File::open(dir)?.sync_all()?;
        }
        #[cfg(not(unix))]
        let _ = dir;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// In-memory fault-injecting double
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemFs {
    files: BTreeMap<PathBuf, Vec<u8>>,
    dirs: Vec<PathBuf>,
    /// Bytes that may still be written before the injected crash.
    budget: Option<u64>,
    /// Set once the budget is exhausted: all further I/O fails.
    crashed: bool,
    /// Cumulative bytes successfully written (for sizing crash sweeps).
    written: u64,
    /// Per-file durable prefix length: what an fsync has pinned. Files
    /// without an entry have never been synced (durable length 0).
    synced: BTreeMap<PathBuf, usize>,
}

/// Locks the shared in-memory fs, recovering from poisoning.
///
/// A panicking test thread holding the lock poisons it; none of the
/// short critical sections below can leave the plain data inside (a
/// map of byte vectors plus three scalars) logically inconsistent, so
/// stripping the poison is sound and keeps the fault-injection harness
/// usable after an induced panic.
fn lock_fs(fs: &Mutex<MemFs>) -> std::sync::MutexGuard<'_, MemFs> {
    fs.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MemFs {
    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(io::Error::other("injected crash: storage is down"))
        } else {
            Ok(())
        }
    }
}

/// An in-memory [`Storage`] with byte-exact fault injection; see the
/// module docs for the crash model.
///
/// Cloning shares the underlying state, so a test can keep a handle,
/// run a workload "process" against another, and inspect or revive the
/// "disk" afterwards.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    fs: Arc<Mutex<MemFs>>,
}

impl MemStorage {
    /// A fault-free in-memory storage.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// A storage that crashes after exactly `budget` more bytes have
    /// been written: the write crossing the boundary lands only its
    /// allowed prefix and fails, and everything after it fails too.
    pub fn with_write_budget(budget: u64) -> Self {
        let s = MemStorage::new();
        lock_fs(&s.fs).budget = Some(budget);
        s
    }

    /// Arms (or re-arms) the write budget on a live storage: exactly
    /// `budget` more bytes may be written before the injected crash
    /// fires. Lets a test run a fault-free prefix workload first and
    /// then place the crash point precisely.
    pub fn arm_write_budget(&self, budget: u64) {
        let mut fs = lock_fs(&self.fs);
        fs.budget = Some(budget);
    }

    /// Clears the crashed flag and the write budget — the simulated
    /// machine restart. On-disk contents are untouched.
    pub fn lift_faults(&self) {
        let mut fs = lock_fs(&self.fs);
        fs.crashed = false;
        fs.budget = None;
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        lock_fs(&self.fs).crashed
    }

    /// Cumulative bytes successfully written so far (used to size
    /// crash-at-every-offset sweeps).
    pub fn written_bytes(&self) -> u64 {
        lock_fs(&self.fs).written
    }

    /// Simulates a power loss that empties the page cache: every file
    /// is truncated back to its *synced length* — the prefix pinned by
    /// the last [`StorageWriter::sync`] on it. Files that were never
    /// synced keep their directory entry but lose all content (the WAL
    /// treats such an empty segment as a torn header: no records, no
    /// loss of acknowledged data). On-disk durable bytes are untouched.
    ///
    /// Composes with [`MemStorage::lift_faults`] for a full
    /// crash-and-restart: lift the injected fault, then drop the cache.
    pub fn drop_unsynced(&self) {
        let mut fs = lock_fs(&self.fs);
        let synced = std::mem::take(&mut fs.synced);
        for (path, file) in fs.files.iter_mut() {
            file.truncate(synced.get(path).copied().unwrap_or(0));
        }
        fs.synced = synced;
    }

    /// XORs `mask` into byte `offset` of `path` (at-rest bit rot).
    /// Returns `false` if the file or offset does not exist.
    pub fn corrupt_byte(&self, path: &Path, offset: usize, mask: u8) -> bool {
        let mut fs = lock_fs(&self.fs);
        match fs.files.get_mut(path).and_then(|f| f.get_mut(offset)) {
            Some(b) => {
                *b ^= mask;
                true
            }
            None => false,
        }
    }

    /// Truncates `path` to `len` bytes (a short read / lost tail).
    /// Returns `false` if the file does not exist or is already shorter.
    pub fn truncate_file(&self, path: &Path, len: usize) -> bool {
        let mut fs = lock_fs(&self.fs);
        match fs.files.get_mut(path) {
            Some(f) if f.len() > len => {
                f.truncate(len);
                true
            }
            _ => false,
        }
    }

    /// The current contents of `path`, if it exists.
    pub fn file(&self, path: &Path) -> Option<Vec<u8>> {
        lock_fs(&self.fs).files.get(path).cloned()
    }

    /// Paths of all stored files, sorted.
    pub fn file_paths(&self) -> Vec<PathBuf> {
        lock_fs(&self.fs).files.keys().cloned().collect()
    }
}

struct MemWriter {
    fs: Arc<Mutex<MemFs>>,
    path: PathBuf,
}

impl StorageWriter for MemWriter {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut fs = lock_fs(&self.fs);
        fs.check_alive()?;
        let allowed = match fs.budget {
            Some(b) => (b.min(buf.len() as u64)) as usize,
            None => buf.len(),
        };
        let file = fs.files.entry(self.path.clone()).or_default();
        file.extend_from_slice(&buf[..allowed]);
        fs.written += allowed as u64;
        if let Some(b) = &mut fs.budget {
            *b -= allowed as u64;
        }
        if allowed < buf.len() {
            fs.crashed = true;
            return Err(io::Error::other(format!(
                "injected crash: wrote {allowed} of {} bytes",
                buf.len()
            )));
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut fs = lock_fs(&self.fs);
        fs.check_alive()?;
        // The fsync commit point: everything written so far becomes
        // durable — it survives a later `drop_unsynced`.
        let len = fs.files.get(&self.path).map_or(0, Vec::len);
        fs.synced.insert(self.path.clone(), len);
        Ok(())
    }
}

impl Storage for MemStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let fs = lock_fs(&self.fs);
        fs.check_alive()?;
        fs.files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display())))
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let fs = lock_fs(&self.fs);
        fs.check_alive()?;
        if !fs.dirs.iter().any(|d| d == dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such directory {}", dir.display()),
            ));
        }
        Ok(fs.files.keys().filter(|p| p.parent() == Some(dir)).cloned().collect())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut fs = lock_fs(&self.fs);
        fs.check_alive()?;
        let mut d = dir.to_path_buf();
        loop {
            if !fs.dirs.contains(&d) {
                fs.dirs.push(d.clone());
            }
            match d.parent() {
                Some(p) if !p.as_os_str().is_empty() => d = p.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageWriter>> {
        let mut fs = lock_fs(&self.fs);
        fs.check_alive()?;
        fs.files.insert(path.to_path_buf(), Vec::new());
        // A truncating create discards any previously durable content.
        fs.synced.remove(path);
        Ok(Box::new(MemWriter { fs: Arc::clone(&self.fs), path: path.to_path_buf() }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut fs = lock_fs(&self.fs);
        fs.check_alive()?;
        match fs.files.remove(from) {
            Some(data) => {
                fs.files.insert(to.to_path_buf(), data);
                // The rename is atomic metadata; the data's durability
                // travels with the file.
                match fs.synced.remove(from) {
                    Some(n) => {
                        fs.synced.insert(to.to_path_buf(), n);
                    }
                    None => {
                        fs.synced.remove(to);
                    }
                }
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("rename source {}", from.display()),
            )),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut fs = lock_fs(&self.fs);
        fs.check_alive()?;
        fs.synced.remove(path);
        fs.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display())))
    }

    fn exists(&self, path: &Path) -> bool {
        let fs = lock_fs(&self.fs);
        fs.files.contains_key(path) || fs.dirs.iter().any(|d| d == path)
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        lock_fs(&self.fs).check_alive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn mem_storage_roundtrip() {
        let s = MemStorage::new();
        let dir = Path::new("/db");
        s.create_dir_all(dir).unwrap();
        let mut w = s.create(&dir.join("a.bin")).unwrap();
        w.write_all(b"hello").unwrap();
        w.sync().unwrap();
        assert_eq!(s.read(&dir.join("a.bin")).unwrap(), b"hello");
        assert_eq!(s.list(dir).unwrap(), vec![dir.join("a.bin")]);
        s.rename(&dir.join("a.bin"), &dir.join("b.bin")).unwrap();
        assert!(!s.exists(&dir.join("a.bin")));
        assert_eq!(s.read(&dir.join("b.bin")).unwrap(), b"hello");
        s.remove_file(&dir.join("b.bin")).unwrap();
        assert!(s.list(dir).unwrap().is_empty());
    }

    #[test]
    fn budget_tears_the_crossing_write_and_kills_the_rest() {
        let s = MemStorage::with_write_budget(3);
        s.create_dir_all(Path::new("/d")).unwrap();
        let mut w = s.create(Path::new("/d/f")).unwrap();
        let err = w.write_all(b"abcdef").unwrap_err();
        assert!(err.to_string().contains("injected crash"), "{err}");
        assert!(s.crashed());
        // The torn prefix landed; nothing else works until restart.
        assert!(s.read(Path::new("/d/f")).is_err());
        s.lift_faults();
        assert_eq!(s.read(Path::new("/d/f")).unwrap(), b"abc");
        assert_eq!(s.written_bytes(), 3);
    }

    #[test]
    fn corruption_helpers() {
        let s = MemStorage::new();
        s.create_dir_all(Path::new("/d")).unwrap();
        s.create(Path::new("/d/f")).unwrap().write_all(b"xyz").unwrap();
        assert!(s.corrupt_byte(Path::new("/d/f"), 1, 0x80));
        assert_eq!(s.file(Path::new("/d/f")).unwrap(), vec![b'x', b'y' ^ 0x80, b'z']);
        assert!(!s.corrupt_byte(Path::new("/d/f"), 99, 1));
        assert!(s.truncate_file(Path::new("/d/f"), 1));
        assert_eq!(s.file(Path::new("/d/f")).unwrap(), b"x");
        assert!(!s.truncate_file(Path::new("/d/f"), 5));
    }

    #[test]
    fn drop_unsynced_keeps_only_fsynced_prefixes() {
        let s = MemStorage::new();
        s.create_dir_all(Path::new("/d")).unwrap();
        // File a: sync after "ab", then write "cd" without syncing.
        let mut a = s.create(Path::new("/d/a")).unwrap();
        a.write_all(b"ab").unwrap();
        a.sync().unwrap();
        a.write_all(b"cd").unwrap();
        // File b: never synced at all.
        s.create(Path::new("/d/b")).unwrap().write_all(b"xyz").unwrap();
        s.drop_unsynced();
        assert_eq!(s.file(Path::new("/d/a")).unwrap(), b"ab");
        assert_eq!(s.file(Path::new("/d/b")).unwrap(), b"");
        // The durable prefix survives repeated drops.
        s.drop_unsynced();
        assert_eq!(s.file(Path::new("/d/a")).unwrap(), b"ab");
    }

    #[test]
    fn rename_and_recreate_carry_durability_correctly() {
        let s = MemStorage::new();
        s.create_dir_all(Path::new("/d")).unwrap();
        let mut w = s.create(Path::new("/d/tmp")).unwrap();
        w.write_all(b"snapshot").unwrap();
        w.sync().unwrap();
        s.rename(Path::new("/d/tmp"), Path::new("/d/final")).unwrap();
        // Recreating a previously synced name restarts at durable len 0.
        let mut w2 = s.create(Path::new("/d/other")).unwrap();
        w2.write_all(b"a").unwrap();
        w2.sync().unwrap();
        s.create(Path::new("/d/other")).unwrap().write_all(b"bb").unwrap();
        s.drop_unsynced();
        assert_eq!(s.file(Path::new("/d/final")).unwrap(), b"snapshot");
        assert_eq!(s.file(Path::new("/d/other")).unwrap(), b"");
    }

    #[test]
    fn fs_storage_roundtrip() {
        let dir = std::env::temp_dir().join("trajc_storage_test");
        std::fs::remove_dir_all(&dir).ok();
        let s = FsStorage;
        s.create_dir_all(&dir).unwrap();
        let mut w = s.create(&dir.join("x")).unwrap();
        w.write_all(b"data").unwrap();
        w.sync().unwrap();
        s.sync_dir(&dir).unwrap();
        assert_eq!(s.read(&dir.join("x")).unwrap(), b"data");
        s.rename(&dir.join("x"), &dir.join("y")).unwrap();
        assert_eq!(s.list(&dir).unwrap(), vec![dir.join("y")]);
        assert!(s.exists(&dir.join("y")));
        s.remove_file(&dir.join("y")).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
