//! # traj-store — a moving-object store with compressed ingest
//!
//! The paper's motivation (§1) is database support for moving objects:
//! "100 Mb of storage capacity is required to store the data for just
//! over 400 objects for a single day, barring any data compression".
//! This crate closes the loop: it is the storage layer the compression
//! algorithms exist for.
//!
//! * [`MovingObjectStore`] — per-object trajectory storage with two
//!   ingest paths: raw appends, and *online compressed* appends through
//!   the opening-window stream of `traj-compress` with a per-store error
//!   budget;
//! * [`DurableStore`] — the durable ingest path: a CRC-checksummed
//!   [write-ahead log](wal) appended to before a fix is acknowledged,
//!   atomic checksummed snapshots ([`persist`]), and crash recovery
//!   ([`DurableStore::open`]) that replays the log tail over the latest
//!   snapshot (format spec: `crates/store/README.md`);
//! * [`GroupCommitStore`] — the batched-fsync variant of the durable
//!   path: appends from many sessions buffer behind one shared fsync
//!   and are acknowledged only once it returns ([`group`]), the
//!   configuration `trajc serve` shards run;
//! * [`storage`] — the injectable filesystem boundary behind the
//!   durability layer, including the fault-injecting
//!   [`storage::MemStorage`] the crash tests sweep with;
//! * [`index::GridIndex`] — a uniform spatiotemporal grid over trajectory
//!   segments for window queries (space rectangle × time interval);
//! * [`rtree::StrTree`] — an STR-packed R-tree over segment bounding
//!   boxes, the classic database index structure, used for spatial
//!   queries and as a cross-check of the grid;
//! * [`query`] — position-at-time, range and nearest-neighbour queries
//!   evaluated on the (compressed) piecewise-linear trajectories.

pub mod durable;
pub mod group;
pub mod index;
pub mod persist;
pub mod query;
pub mod rtree;
pub mod storage;
pub mod store;
pub mod wal;

pub use durable::{DurableOptions, DurableStore, RecoveryReport};
pub use group::{GroupCommitOptions, GroupCommitStore};
pub use index::GridIndex;
pub use persist::{load_dir, save_dir};
pub use query::{
    knn_at, objects_in_window, position_of, snapshot_at, trajectories_in_window, QueryWindow,
};
pub use rtree::StrTree;
pub use store::{IngestMode, MovingObjectStore, ObjectId, StoreError, StoreStats};
pub use wal::{SyncPolicy, WalOptions};
