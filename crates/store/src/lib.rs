//! # traj-store — a moving-object store with compressed ingest
//!
//! The paper's motivation (§1) is database support for moving objects:
//! "100 Mb of storage capacity is required to store the data for just
//! over 400 objects for a single day, barring any data compression".
//! This crate closes the loop: it is the storage layer the compression
//! algorithms exist for.
//!
//! * [`MovingObjectStore`] — per-object trajectory storage with two
//!   ingest paths: raw appends, and *online compressed* appends through
//!   the opening-window stream of `traj-compress` with a per-store error
//!   budget;
//! * [`index::GridIndex`] — a uniform spatiotemporal grid over trajectory
//!   segments for window queries (space rectangle × time interval);
//! * [`rtree::StrTree`] — an STR-packed R-tree over segment bounding
//!   boxes, the classic database index structure, used for spatial
//!   queries and as a cross-check of the grid;
//! * [`query`] — position-at-time, range and nearest-neighbour queries
//!   evaluated on the (compressed) piecewise-linear trajectories.

pub mod index;
pub mod persist;
pub mod query;
pub mod rtree;
pub mod store;

pub use index::GridIndex;
pub use persist::{load_dir, save_dir};
pub use query::{
    knn_at, objects_in_window, position_of, snapshot_at, trajectories_in_window, QueryWindow,
};
pub use rtree::StrTree;
pub use store::{IngestMode, MovingObjectStore, ObjectId, StoreError, StoreStats};
