//! Directory-based persistence for the moving-object store.
//!
//! The stored (possibly compressed) history of each object is written as
//! one `<object_id>.csv` file in the `t,x,y` format of
//! [`traj_model::io`] — a deliberately boring layout: greppable,
//! diffable, loadable by anything. Loading reconstructs a store in
//! [`IngestMode::Raw`]: the fixes on disk are already the kept subset,
//! and compressing them again would silently stack error budgets.

use std::path::Path;

use traj_model::{io, Trajectory};

use crate::store::{IngestMode, MovingObjectStore, ObjectId, StoreError};

/// Writes every object's stored trajectory to `dir` as
/// `<object_id>.csv`, creating the directory if needed.
///
/// Objects whose stored history is empty are skipped.
///
/// # Errors
/// Propagates filesystem failures.
pub fn save_dir(store: &MovingObjectStore, dir: &Path) -> Result<usize, StoreError> {
    std::fs::create_dir_all(dir).map_err(traj_model::ModelError::Io)?;
    let mut written = 0usize;
    for id in store.object_ids() {
        let Some(traj) = store.trajectory(id) else { continue };
        let path = dir.join(format!("{id}.csv"));
        io::write_csv(&traj, &path)?;
        written += 1;
        if traj_obs::metrics_enabled() {
            // Size lookup only when instrumentation is compiled in — it
            // costs a stat(2) per file.
            if let Ok(meta) = std::fs::metadata(&path) {
                traj_obs::counter!("store", "persist_bytes").add(meta.len());
            }
        }
    }
    traj_obs::counter!("store", "persist_files").add(written as u64);
    Ok(written)
}

/// Loads a store from a directory written by [`save_dir`]: every
/// `<n>.csv` file becomes object `n`. Non-`.csv` entries and files whose
/// stem is not an integer are ignored (so the directory can carry a
/// README or manifests).
///
/// # Errors
/// Fails on unreadable or malformed trajectory files.
pub fn load_dir(dir: &Path) -> Result<MovingObjectStore, StoreError> {
    let mut store = MovingObjectStore::new(IngestMode::Raw);
    let entries = std::fs::read_dir(dir).map_err(traj_model::ModelError::Io)?;
    let mut files: Vec<(ObjectId, std::path::PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(traj_model::ModelError::Io)?;
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "csv") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else { continue };
        let Ok(id) = stem.parse::<ObjectId>() else { continue };
        files.push((id, path));
    }
    // Deterministic load order regardless of directory iteration order.
    files.sort_unstable_by_key(|(id, _)| *id);
    for (id, path) in files {
        let traj: Trajectory = io::read_csv(&path)?;
        store.insert_trajectory(id, &traj)?;
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::Fix;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("trajc_persist_tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample_store() -> MovingObjectStore {
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        for id in [3u64, 11, 7] {
            for i in 0..20 {
                s.append(
                    id,
                    Fix::from_parts(i as f64 * 10.0, i as f64 * 100.0 + id as f64, id as f64),
                )
                .unwrap();
            }
        }
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = tmp("roundtrip");
        let store = sample_store();
        let written = save_dir(&store, &dir).unwrap();
        assert_eq!(written, 3);
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(
            loaded.object_ids().collect::<Vec<_>>(),
            store.object_ids().collect::<Vec<_>>()
        );
        for id in store.object_ids() {
            assert_eq!(loaded.trajectory(id), store.trajectory(id), "object {id}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_store_persists_its_kept_subset() {
        let dir = tmp("compressed");
        let mut s = MovingObjectStore::new(IngestMode::Compressed {
            epsilon: 1000.0,
            speed_epsilon: None,
            max_window: 64,
        });
        for i in 0..50 {
            s.append(1, Fix::from_parts(i as f64 * 10.0, i as f64 * 100.0, 0.0)).unwrap();
        }
        save_dir(&s, &dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        // The loaded store holds exactly the kept fixes (straight line →
        // endpoints only).
        assert_eq!(loaded.trajectory(1).unwrap(), s.trajectory(1).unwrap());
        assert!(loaded.trajectory(1).unwrap().len() < 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_ignores_foreign_files() {
        let dir = tmp("foreign");
        save_dir(&sample_store(), &dir).unwrap();
        std::fs::write(dir.join("README.md"), "not a trajectory").unwrap();
        std::fs::write(dir.join("not_a_number.csv"), "t,x,y\n0,0,0\n").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_surfaces_corruption() {
        let dir = tmp("corrupt");
        save_dir(&sample_store(), &dir).unwrap();
        std::fs::write(dir.join("3.csv"), "t,x,y\n0,0,0\ngarbage\n").unwrap();
        assert!(load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_error() {
        assert!(load_dir(Path::new("/definitely/not/here")).is_err());
    }

    #[test]
    fn empty_directory_loads_empty_store() {
        let dir = tmp("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert!(loaded.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
