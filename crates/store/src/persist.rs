//! Atomic, checksummed snapshot persistence for the moving-object store.
//!
//! The stored (possibly compressed) history of each object is written as
//! one `<object_id>.csv` file in the `t,x,y` format of
//! [`traj_model::io`] — a deliberately boring layout: greppable,
//! diffable, loadable by anything. Two durability measures sit on top
//! (byte-level spec in `crates/store/README.md`):
//!
//! * every file is written to `<object_id>.csv.tmp` and published with
//!   an atomic rename, so a crash leaves either the old or the new file,
//!   never a truncated half;
//! * the last line is a CRC-32 trailer comment
//!   (`# crc32:xxxxxxxx`) over all preceding bytes. The trailer is a
//!   `#` comment, so the files stay loadable by anything that reads the
//!   plain `t,x,y` format; [`load_dir`] *verifies* it and rejects files
//!   whose contents rotted at rest. Files without a trailer (written by
//!   older versions, or by hand) load without verification.
//!
//! Loading reconstructs a store in [`IngestMode::Raw`]: the fixes on
//! disk are already the kept subset, and compressing them again would
//! silently stack error budgets.

use std::path::Path;

use traj_model::{io, Trajectory};

use crate::storage::{crc32, FsStorage, Storage};
use crate::store::{IngestMode, MovingObjectStore, ObjectId, StoreError};

/// Prefix of the checksum trailer line.
pub const TRAILER_PREFIX: &str = "# crc32:";

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Storage { path: path.to_path_buf(), source }
}

/// Serializes a trajectory to the snapshot format: `t,x,y` CSV plus the
/// checksum trailer line.
pub fn snapshot_bytes(traj: &Trajectory) -> Vec<u8> {
    let mut body = io::to_csv_string(traj).into_bytes();
    let crc = crc32(&body);
    body.extend_from_slice(format!("{TRAILER_PREFIX}{crc:08x}\n").as_bytes());
    body
}

/// Verifies a snapshot file's trailer, if present.
///
/// # Errors
/// [`StoreError::Corrupt`] when the trailer is malformed or the checksum
/// does not match the preceding bytes. Trailer-less content passes.
pub fn verify_snapshot(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    // The trailer is the final line; find the start of the last
    // non-empty line.
    let trimmed = match bytes.last() {
        Some(b'\n') => &bytes[..bytes.len() - 1],
        _ => bytes,
    };
    let line_start = trimmed.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    let last_line = &trimmed[line_start..];
    let Some(hex) = last_line.strip_prefix(TRAILER_PREFIX.as_bytes()) else {
        return Ok(()); // legacy file without a trailer
    };
    let corrupt = |detail: String| StoreError::Corrupt { path: path.to_path_buf(), detail };
    let hex = std::str::from_utf8(hex)
        .map_err(|_| corrupt("checksum trailer is not UTF-8".into()))?
        .trim();
    let expected = u32::from_str_radix(hex, 16)
        .map_err(|_| corrupt(format!("malformed checksum trailer {hex:?}")))?;
    let actual = crc32(&bytes[..line_start]);
    if actual != expected {
        return Err(corrupt(format!(
            "checksum mismatch: trailer {expected:08x}, contents {actual:08x}"
        )));
    }
    Ok(())
}

/// [`save_dir`] over an injectable [`Storage`] backend.
///
/// # Errors
/// Backend failures (with the offending path attached).
pub fn save_dir_with(
    storage: &dyn Storage,
    store: &MovingObjectStore,
    dir: &Path,
) -> Result<usize, StoreError> {
    storage.create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let mut written = 0usize;
    for id in store.object_ids() {
        let Some(traj) = store.trajectory(id) else { continue };
        let bytes = snapshot_bytes(&traj);
        let tmp = dir.join(format!("{id}.csv.tmp"));
        let path = dir.join(format!("{id}.csv"));
        {
            let mut w = storage.create(&tmp).map_err(|e| io_err(&tmp, e))?;
            w.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
            // The data must be durable before the rename publishes it:
            // otherwise the rename can survive a crash that the bytes
            // did not.
            w.sync().map_err(|e| io_err(&tmp, e))?;
        }
        storage.rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        written += 1;
        traj_obs::counter!("store", "persist_bytes").add(bytes.len() as u64);
    }
    storage.sync_dir(dir).map_err(|e| io_err(dir, e))?;
    traj_obs::counter!("store", "persist_files").add(written as u64);
    Ok(written)
}

/// Writes every object's stored trajectory to `dir` as
/// `<object_id>.csv` (atomic rename, checksum trailer), creating the
/// directory if needed.
///
/// Objects whose stored history is empty are skipped.
///
/// # Errors
/// Propagates filesystem failures, with the offending path attached
/// ([`StoreError::Storage`]).
pub fn save_dir(store: &MovingObjectStore, dir: &Path) -> Result<usize, StoreError> {
    save_dir_with(&FsStorage, store, dir)
}

/// Collects the `<n>.csv` object files under `dir`, ascending by id.
fn object_files(
    storage: &dyn Storage,
    dir: &Path,
) -> Result<Vec<(ObjectId, std::path::PathBuf)>, StoreError> {
    let mut files: Vec<(ObjectId, std::path::PathBuf)> = Vec::new();
    for path in storage.list(dir).map_err(|e| io_err(dir, e))? {
        if path.extension().is_none_or(|e| e != "csv") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else { continue };
        let Ok(id) = stem.parse::<ObjectId>() else { continue };
        files.push((id, path));
    }
    // Deterministic load order regardless of directory iteration order.
    files.sort_unstable_by_key(|(id, _)| *id);
    Ok(files)
}

/// [`load_dir`] over an injectable [`Storage`] backend.
///
/// # Errors
/// Like [`load_dir`].
pub fn load_dir_with(
    storage: &dyn Storage,
    dir: &Path,
) -> Result<MovingObjectStore, StoreError> {
    let mut store = MovingObjectStore::new(IngestMode::Raw);
    for (id, path) in object_files(storage, dir)? {
        let bytes = storage.read(&path).map_err(|e| io_err(&path, e))?;
        verify_snapshot(&path, &bytes)?;
        let text = std::str::from_utf8(&bytes).map_err(|_| StoreError::Corrupt {
            path: path.clone(),
            detail: "snapshot file is not UTF-8".into(),
        })?;
        let traj: Trajectory = io::from_csv_str(text)?;
        store.restore_trajectory(id, traj.into_fixes())?;
    }
    Ok(store)
}

/// Loads a store from a directory written by [`save_dir`]: every
/// `<n>.csv` file becomes object `n`. Non-`.csv` entries and files whose
/// stem is not an integer are ignored (so the directory can carry a
/// README or manifests); `.tmp` leftovers from an interrupted save are
/// ignored the same way. Checksum trailers are verified when present.
///
/// # Errors
/// Fails on unreadable or malformed trajectory files
/// ([`StoreError::Storage`] / [`StoreError::Model`]) and on checksum
/// mismatches ([`StoreError::Corrupt`]).
pub fn load_dir(dir: &Path) -> Result<MovingObjectStore, StoreError> {
    load_dir_with(&FsStorage, dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::Fix;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("trajc_persist_tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample_store() -> Result<MovingObjectStore, StoreError> {
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        for id in [3u64, 11, 7] {
            for i in 0..20 {
                s.append(
                    id,
                    Fix::from_parts(i as f64 * 10.0, i as f64 * 100.0 + id as f64, id as f64),
                )?;
            }
        }
        Ok(s)
    }

    #[test]
    fn roundtrip_preserves_everything() -> Result<(), Box<dyn std::error::Error>> {
        let dir = tmp("roundtrip");
        let store = sample_store()?;
        let written = save_dir(&store, &dir)?;
        assert_eq!(written, 3);
        let loaded = load_dir(&dir)?;
        assert_eq!(
            loaded.object_ids().collect::<Vec<_>>(),
            store.object_ids().collect::<Vec<_>>()
        );
        for id in store.object_ids() {
            assert_eq!(loaded.trajectory(id), store.trajectory(id), "object {id}");
        }
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn snapshot_bytes_match_the_readme_example() -> Result<(), Box<dyn std::error::Error>> {
        // Pins the worked example in crates/store/README.md: if this
        // breaks, the format changed and the spec must change with it.
        let traj = Trajectory::from_triples([(0.0, 0.0, 0.0), (10.0, 120.5, -3.25)])?;
        assert_eq!(
            String::from_utf8(snapshot_bytes(&traj))?,
            "t,x,y\n0,0,0\n10,120.5,-3.25\n# crc32:c094cc4d\n"
        );
        Ok(())
    }

    #[test]
    fn files_carry_a_valid_checksum_trailer() -> Result<(), Box<dyn std::error::Error>> {
        let dir = tmp("trailer");
        save_dir(&sample_store()?, &dir)?;
        let text = std::fs::read_to_string(dir.join("3.csv"))?;
        let trailer = text.lines().last().ok_or("empty snapshot")?;
        assert!(trailer.starts_with(TRAILER_PREFIX), "trailer line: {trailer:?}");
        // No temp files are left behind.
        assert!(!dir.join("3.csv.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn compressed_store_persists_its_kept_subset() -> Result<(), Box<dyn std::error::Error>> {
        let dir = tmp("compressed");
        let mut s = MovingObjectStore::new(IngestMode::Compressed {
            epsilon: 1000.0,
            speed_epsilon: None,
            max_window: 64,
        });
        for i in 0..50 {
            s.append(1, Fix::from_parts(i as f64 * 10.0, i as f64 * 100.0, 0.0))?;
        }
        save_dir(&s, &dir)?;
        let loaded = load_dir(&dir)?;
        // The loaded store holds exactly the kept fixes (straight line →
        // endpoints only).
        assert_eq!(loaded.trajectory(1).ok_or("missing object 1")?, s.trajectory(1).ok_or("missing object 1")?);
        assert!(loaded.trajectory(1).ok_or("missing object 1")?.len() < 50);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn load_ignores_foreign_files() -> Result<(), Box<dyn std::error::Error>> {
        let dir = tmp("foreign");
        save_dir(&sample_store()?, &dir)?;
        std::fs::write(dir.join("README.md"), "not a trajectory")?;
        std::fs::write(dir.join("not_a_number.csv"), "t,x,y\n0,0,0\n")?;
        std::fs::write(dir.join("5.csv.tmp"), "t,x,y\n0,0,0\n")?;
        let loaded = load_dir(&dir)?;
        assert_eq!(loaded.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn load_surfaces_corruption() -> Result<(), Box<dyn std::error::Error>> {
        let dir = tmp("corrupt");
        save_dir(&sample_store()?, &dir)?;
        std::fs::write(dir.join("3.csv"), "t,x,y\n0,0,0\ngarbage\n")?;
        assert!(load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn load_detects_bit_rot_via_trailer() -> Result<(), Box<dyn std::error::Error>> {
        let dir = tmp("bitrot");
        save_dir(&sample_store()?, &dir)?;
        let path = dir.join("7.csv");
        let mut bytes = std::fs::read(&path)?;
        // Flip one digit inside the data body (not the trailer line).
        let pos = bytes.iter().position(|&b| b == b'1').ok_or("no digit to flip")?;
        bytes[pos] = b'2';
        std::fs::write(&path, &bytes)?;
        let err = load_dir(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("7.csv"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn trailerless_legacy_files_still_load() -> Result<(), Box<dyn std::error::Error>> {
        let dir = tmp("legacy");
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join("4.csv"), "t,x,y\n0,0,0\n10,5,5\n")?;
        let loaded = load_dir(&dir)?;
        assert_eq!(loaded.trajectory(4).ok_or("missing object 4")?.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn missing_directory_is_an_error_with_path_context() -> Result<(), Box<dyn std::error::Error>> {
        let err = load_dir(Path::new("/definitely/not/here")).unwrap_err();
        assert!(matches!(err, StoreError::Storage { .. }), "{err}");
        assert!(err.to_string().contains("/definitely/not/here"), "{err}");
        Ok(())
    }

    #[test]
    fn empty_directory_loads_empty_store() -> Result<(), Box<dyn std::error::Error>> {
        let dir = tmp("empty");
        std::fs::create_dir_all(&dir)?;
        let loaded = load_dir(&dir)?;
        assert!(loaded.is_empty());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn verify_snapshot_catches_malformed_trailers() -> Result<(), Box<dyn std::error::Error>> {
        let p = Path::new("x.csv");
        assert!(verify_snapshot(p, b"t,x,y\n0,0,0\n").is_ok());
        assert!(verify_snapshot(p, b"t,x,y\n0,0,0\n# crc32:zzzz\n").is_err());
        let good = snapshot_bytes(
            &Trajectory::from_triples([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)])?,
        );
        assert!(verify_snapshot(p, &good).is_ok());
        Ok(())
    }
}
