//! Cross-session group commit: many appends, one fsync, then acks.
//!
//! The per-append `fsync` of [`SyncPolicy::EveryAppend`] is the
//! dominant cost of durable ingest (`BENCH_PR10.json`: it caps a shard
//! at the disk's sync rate). Group commit amortizes it without giving
//! up the durability class: appends from any number of sessions are
//! *buffered* — written to the WAL and applied to the in-memory store,
//! but **not yet acknowledged** — and a single [`GroupCommitStore::commit`]
//! fsyncs the lot. Only fixes at or below the sequence number a commit
//! returned may be acknowledged to their reporters; a crash can then
//! never take back an acknowledged fix, exactly as with per-append
//! fsync (pinned by `crates/store/tests/durability.rs`).
//!
//! The protocol, from a caller's (shard worker's) perspective:
//!
//! 1. [`GroupCommitStore::buffer`] each incoming fix → a sequence
//!    number. Hold the reporter's ack.
//! 2. When the batch is full ([`GroupCommitStore::commit_due`]) or the
//!    [`GroupCommitOptions::max_delay`] deadline passes, call
//!    [`GroupCommitStore::commit`]. It returns the durable high-water
//!    sequence.
//! 3. Release every ack whose sequence is covered.
//!
//! The commit point is the WAL fsync — the same commit point
//! [`DurableStore`] uses, just batched. Recovery is unchanged:
//! [`DurableStore::open`]-style replay over the shard directory.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use traj_model::Fix;

use crate::durable::{DurableOptions, DurableStore, RecoveryReport};
use crate::storage::{FsStorage, Storage};
use crate::store::{IngestMode, MovingObjectStore, ObjectId, StoreError};
use crate::wal::SyncPolicy;

/// Batching bounds for [`GroupCommitStore`] callers.
///
/// Both bounds limit *ack latency*, not correctness: a commit may
/// legally happen at any time. `max_batch` caps how many buffered fixes
/// ride one fsync; `max_delay` caps how long the oldest buffered fix
/// waits for its fsync when traffic is light.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitOptions {
    /// Commit when this many fixes are buffered.
    pub max_batch: usize,
    /// Commit when the oldest buffered fix has waited this long.
    pub max_delay: Duration,
}

impl Default for GroupCommitOptions {
    fn default() -> Self {
        // 256 fixes ≈ 10 KiB of WAL per fsync; 500 µs keeps worst-case
        // added ack latency well under a disk sync on light traffic.
        GroupCommitOptions { max_batch: 256, max_delay: Duration::from_micros(500) }
    }
}

/// A [`DurableStore`] whose durability commit point is an explicit,
/// shared, batched fsync — see the [module docs](self) for the
/// protocol.
///
/// Constructed via [`DurableStore::open_group_commit`] (or
/// [`GroupCommitStore::open_with`] over an injectable backend); the
/// constructor forces [`SyncPolicy::Manual`] internally so the commit
/// point can never silently move.
///
/// ```
/// use std::sync::Arc;
/// use traj_model::Fix;
/// use traj_store::storage::MemStorage;
/// use traj_store::{DurableOptions, GroupCommitOptions, GroupCommitStore, IngestMode};
///
/// let disk = Arc::new(MemStorage::new());
/// let (mut store, _) = GroupCommitStore::open_with(
///     disk.clone(),
///     "/shard-0".as_ref(),
///     IngestMode::Raw,
///     DurableOptions::default(),
///     GroupCommitOptions::default(),
/// )
/// .unwrap();
///
/// // Two sessions' fixes ride the same fsync.
/// let a = store.buffer(1, Fix::from_parts(0.0, 0.0, 0.0)).unwrap();
/// let b = store.buffer(2, Fix::from_parts(0.5, 9.0, 9.0)).unwrap();
/// let durable = store.commit().unwrap();
/// assert!(a <= durable && b <= durable); // both may now be acked
/// ```
pub struct GroupCommitStore {
    inner: DurableStore,
    opts: GroupCommitOptions,
    /// Sequence of the last buffered fix (0 = none yet).
    buffered: u64,
    /// Highest sequence covered by a successful commit.
    durable: u64,
    /// Set after a storage-level failure: the WAL may hold a torn or
    /// never-to-be-synced suffix, so no further sequence may be
    /// acknowledged from this handle.
    poisoned: bool,
}

impl std::fmt::Debug for GroupCommitStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitStore")
            .field("buffered", &self.buffered)
            .field("durable", &self.durable)
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

impl GroupCommitStore {
    /// Opens (and recovers) a group-commit store at `dir` on the real
    /// filesystem. The layout on disk is exactly a [`DurableStore`]
    /// directory — `trajc store recover` works on it unchanged.
    ///
    /// # Errors
    /// Like [`DurableStore::open`].
    pub fn open(
        dir: &Path,
        mode: IngestMode,
        opts: DurableOptions,
        group: GroupCommitOptions,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::open_with(Arc::new(FsStorage), dir, mode, opts, group)
    }

    /// [`GroupCommitStore::open`] over an injectable [`Storage`]
    /// backend. Whatever `opts.wal.sync` says, the store runs the log
    /// under [`SyncPolicy::Manual`]: the fsync belongs to
    /// [`GroupCommitStore::commit`] alone.
    ///
    /// # Errors
    /// Like [`DurableStore::open`].
    pub fn open_with(
        storage: Arc<dyn Storage>,
        dir: &Path,
        mode: IngestMode,
        mut opts: DurableOptions,
        group: GroupCommitOptions,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        opts.wal.sync = SyncPolicy::Manual;
        let (inner, report) = DurableStore::open_with(storage, dir, mode, opts)?;
        Ok((
            GroupCommitStore { inner, opts: group, buffered: 0, durable: 0, poisoned: false },
            report,
        ))
    }

    /// Appends a fix to the WAL and the in-memory store *without*
    /// making it durable. Returns its sequence number; the fix must not
    /// be acknowledged until a later [`GroupCommitStore::commit`]
    /// returns a sequence at or above it.
    ///
    /// # Errors
    /// Validation failures ([`StoreError::Model`]) reject the fix and
    /// leave the group intact. Storage failures poison the handle: the
    /// log may end in a torn or abandoned (never-to-be-synced) suffix,
    /// so no later commit from this handle may acknowledge anything —
    /// reopen the store to recover.
    pub fn buffer(&mut self, id: ObjectId, fix: Fix) -> Result<u64, StoreError> {
        if self.poisoned {
            return Err(self.poisoned_err());
        }
        match self.inner.append(id, fix) {
            Ok(()) => {
                self.buffered += 1;
                Ok(self.buffered)
            }
            Err(e @ StoreError::Model(_)) => Err(e),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Makes every buffered fix durable with one fsync and returns the
    /// durable high-water sequence: acknowledge exactly the fixes whose
    /// [`GroupCommitStore::buffer`] sequence is `<=` this value.
    ///
    /// # Errors
    /// A failed fsync poisons the handle (the kernel may have dropped
    /// the dirty pages — nothing since the last good commit can be
    /// trusted durable); reopen the store to recover.
    pub fn commit(&mut self) -> Result<u64, StoreError> {
        if self.poisoned {
            return Err(self.poisoned_err());
        }
        if self.buffered > self.durable {
            let group = self.buffered - self.durable;
            if let Err(e) = self.inner.sync() {
                self.poisoned = true;
                return Err(e);
            }
            traj_obs::counter!("store", "group_commits").inc();
            traj_obs::histogram!("store", "group_size").record(group);
            self.durable = self.buffered;
        }
        Ok(self.durable)
    }

    fn poisoned_err(&self) -> StoreError {
        StoreError::Storage {
            path: self.inner.dir().to_path_buf(),
            source: std::io::Error::other(
                "group-commit store poisoned by an earlier storage failure; reopen to recover",
            ),
        }
    }

    /// Number of buffered fixes not yet covered by a commit.
    pub fn pending(&self) -> u64 {
        self.buffered - self.durable
    }

    /// Whether the batch-size bound says it is time to commit.
    pub fn commit_due(&self) -> bool {
        self.pending() >= self.opts.max_batch as u64
    }

    /// Sequence of the last buffered fix (0 before the first).
    pub fn buffered_seq(&self) -> u64 {
        self.buffered
    }

    /// Highest sequence a commit has made durable.
    pub fn durable_seq(&self) -> u64 {
        self.durable
    }

    /// The configured batching bounds.
    pub fn options(&self) -> GroupCommitOptions {
        self.opts
    }

    /// Read access to the in-memory store (queries, stats, indexes).
    /// Note: it includes buffered-but-uncommitted fixes.
    pub fn store(&self) -> &MovingObjectStore {
        self.inner.store()
    }

    /// The store directory this instance persists into.
    pub fn dir(&self) -> &Path {
        self.inner.dir()
    }

    /// Commits, then persists a snapshot and truncates the WAL (see
    /// [`DurableStore::snapshot`]).
    ///
    /// # Errors
    /// Like [`DurableStore::snapshot`]; a failed commit poisons the
    /// handle first.
    pub fn snapshot(&mut self) -> Result<usize, StoreError> {
        self.commit()?;
        self.inner.snapshot()
    }

    /// Consumes the handle, returning the in-memory store (including
    /// buffered-but-uncommitted fixes; callers that need the durable
    /// view should [`GroupCommitStore::commit`] first).
    pub fn into_store(self) -> MovingObjectStore {
        self.inner.into_store()
    }
}

impl DurableStore {
    /// Opens a store whose durability commit point is an explicit
    /// batched fsync — the group-commit ingest configuration
    /// ([`GroupCommitStore`]). Use this instead of handing
    /// [`SyncPolicy::Manual`] to a plain [`DurableStore`]: the returned
    /// handle's `buffer`/`commit` API makes it impossible to
    /// acknowledge a fix the disk has not seen.
    ///
    /// # Errors
    /// Like [`DurableStore::open`].
    pub fn open_group_commit(
        dir: &Path,
        mode: IngestMode,
        opts: DurableOptions,
        group: GroupCommitOptions,
    ) -> Result<(GroupCommitStore, RecoveryReport), StoreError> {
        GroupCommitStore::open(dir, mode, opts, group)
    }

    /// [`DurableStore::open_group_commit`] over an injectable
    /// [`Storage`] backend.
    ///
    /// # Errors
    /// Like [`DurableStore::open`].
    pub fn open_group_commit_with(
        storage: Arc<dyn Storage>,
        dir: &Path,
        mode: IngestMode,
        opts: DurableOptions,
        group: GroupCommitOptions,
    ) -> Result<(GroupCommitStore, RecoveryReport), StoreError> {
        GroupCommitStore::open_with(storage, dir, mode, opts, group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn fix(t: f64) -> Fix {
        Fix::from_parts(t, t * 3.0, -t)
    }

    fn open_mem(disk: &Arc<MemStorage>) -> GroupCommitStore {
        GroupCommitStore::open_with(
            disk.clone(),
            Path::new("/db"),
            IngestMode::Raw,
            DurableOptions::default(),
            GroupCommitOptions::default(),
        )
        .unwrap()
        .0
    }

    #[test]
    fn sequences_advance_and_commit_covers_them() {
        let disk = Arc::new(MemStorage::new());
        let mut s = open_mem(&disk);
        assert_eq!(s.buffer(1, fix(0.0)).unwrap(), 1);
        assert_eq!(s.buffer(2, fix(0.0)).unwrap(), 2);
        assert_eq!(s.pending(), 2);
        assert_eq!(s.durable_seq(), 0);
        assert_eq!(s.commit().unwrap(), 2);
        assert_eq!(s.pending(), 0);
        // An empty commit is free and keeps the high-water mark.
        assert_eq!(s.commit().unwrap(), 2);
    }

    #[test]
    fn commit_due_tracks_max_batch() {
        let disk = Arc::new(MemStorage::new());
        let (mut s, _) = GroupCommitStore::open_with(
            disk.clone(),
            Path::new("/db"),
            IngestMode::Raw,
            DurableOptions::default(),
            GroupCommitOptions { max_batch: 3, max_delay: Duration::from_millis(1) },
        )
        .unwrap();
        for i in 0..2 {
            s.buffer(1, fix(i as f64)).unwrap();
        }
        assert!(!s.commit_due());
        s.buffer(1, fix(2.0)).unwrap();
        assert!(s.commit_due());
        s.commit().unwrap();
        assert!(!s.commit_due());
    }

    #[test]
    fn uncommitted_fixes_do_not_survive_power_loss_committed_do() {
        let disk = Arc::new(MemStorage::new());
        let mut s = open_mem(&disk);
        for i in 0..5 {
            s.buffer(7, fix(i as f64)).unwrap();
        }
        let durable = s.commit().unwrap();
        assert_eq!(durable, 5);
        for i in 5..9 {
            s.buffer(7, fix(i as f64)).unwrap();
        }
        // Power loss before the next commit: the page cache empties.
        drop(s);
        disk.drop_unsynced();
        let (s, report) = DurableStore::open_with(
            disk.clone(),
            Path::new("/db"),
            IngestMode::Raw,
            DurableOptions::default(),
        )
        .unwrap();
        assert_eq!(report.replayed, 5, "exactly the committed prefix");
        assert_eq!(s.store().trajectory(7).unwrap().len(), 5);
    }

    #[test]
    fn validation_rejects_do_not_poison_the_group() {
        let disk = Arc::new(MemStorage::new());
        let mut s = open_mem(&disk);
        s.buffer(1, fix(10.0)).unwrap();
        assert!(matches!(s.buffer(1, fix(5.0)), Err(StoreError::Model(_))));
        assert!(matches!(
            s.buffer(1, Fix::from_parts(f64::NAN, 0.0, 0.0)),
            Err(StoreError::Model(_))
        ));
        assert_eq!(s.commit().unwrap(), 1, "group still commits");
    }

    #[test]
    fn storage_failure_poisons_the_handle() {
        let disk = Arc::new(MemStorage::new());
        let mut s = open_mem(&disk);
        s.buffer(1, fix(0.0)).unwrap();
        s.commit().unwrap();
        // Exhaust the write budget mid-append: a torn suffix is possible.
        disk.arm_write_budget(3);
        assert!(matches!(s.buffer(1, fix(1.0)), Err(StoreError::Storage { .. })));
        // Every later operation refuses: nothing further may be acked.
        let err = s.commit().unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        let err = s.buffer(1, fix(2.0)).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        // Reopen recovers the durable prefix.
        disk.lift_faults();
        disk.drop_unsynced();
        drop(s);
        let (s, report) = DurableStore::open_with(
            disk.clone(),
            Path::new("/db"),
            IngestMode::Raw,
            DurableOptions::default(),
        )
        .unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(s.store().trajectory(1).unwrap().len(), 1);
    }
}
