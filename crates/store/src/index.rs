//! A uniform spatiotemporal grid index over trajectory segments.
//!
//! Each stored trajectory segment (two consecutive kept fixes) is binned
//! into every `(x, y, t)` cell its spatiotemporal extent touches. A
//! window query (space rectangle × time interval) visits only the
//! covered cells, then verifies each candidate segment exactly: its
//! motion is clipped to the query's time interval and the clipped
//! sub-segment tested against the rectangle. The verification makes the
//! index *exact* — equivalent to a full scan — while the grid provides
//! the pruning.

use std::collections::{HashMap, HashSet};

use traj_geom::{Bbox, Segment};
use traj_model::Fix;

use crate::query::QueryWindow;
use crate::store::{MovingObjectStore, ObjectId};

/// A trajectory segment registered in the index.
#[derive(Debug, Clone, Copy)]
struct SegEntry {
    object: ObjectId,
    a: Fix,
    b: Fix,
}

/// Uniform grid over space × time.
///
/// ```
/// use traj_store::{GridIndex, IngestMode, MovingObjectStore, QueryWindow};
/// use traj_geom::Point2;
/// use traj_model::Trajectory;
///
/// let mut store = MovingObjectStore::new(IngestMode::Raw);
/// // One car driving east at 10 m/s.
/// store.insert_trajectory(1, &Trajectory::from_triples(
///     (0..100).map(|i| (i as f64 * 10.0, i as f64 * 100.0, 0.0)),
/// ).unwrap()).unwrap();
///
/// let index = GridIndex::build(&store, 500.0, 100.0);
/// // Near x = 2000 m while the car is there (t ≈ 200 s)...
/// let hit = QueryWindow::new(Point2::new(1900.0, -50.0), Point2::new(2100.0, 50.0), 150.0, 250.0);
/// assert_eq!(index.objects_in_window(&hit), vec![1]);
/// // ...but not an hour later.
/// let miss = QueryWindow::new(Point2::new(1900.0, -50.0), Point2::new(2100.0, 50.0), 3600.0, 3700.0);
/// assert!(index.objects_in_window(&miss).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell_size: f64,
    time_bucket: f64,
    cells: HashMap<(i64, i64, i64), Vec<u32>>,
    entries: Vec<SegEntry>,
}

impl GridIndex {
    /// Builds an index over every stored segment of `store` with spatial
    /// cells of `cell_size` metres and temporal buckets of `time_bucket`
    /// seconds.
    ///
    /// # Panics
    /// Panics unless both granularities are positive and finite.
    pub fn build(store: &MovingObjectStore, cell_size: f64, time_bucket: f64) -> Self {
        assert!(cell_size > 0.0 && cell_size.is_finite(), "cell_size must be positive");
        assert!(time_bucket > 0.0 && time_bucket.is_finite(), "time_bucket must be positive");
        let mut idx = GridIndex {
            cell_size,
            time_bucket,
            cells: HashMap::new(),
            entries: Vec::new(),
        };
        for id in store.object_ids() {
            let Some(fixes) = store.stored_fixes(id) else { continue };
            for w in fixes.windows(2) {
                idx.insert_segment(id, w[0], w[1]);
            }
            if fixes.len() == 1 {
                // A single-fix object is indexed as a degenerate segment
                // so point-in-window queries can still find it.
                idx.insert_segment(id, fixes[0], fixes[0]);
            }
        }
        idx
    }

    fn insert_segment(&mut self, object: ObjectId, a: Fix, b: Fix) {
        let entry_id = self.entries.len() as u32;
        self.entries.push(SegEntry { object, a, b });
        let bbox = Bbox::from_corners(a.pos, b.pos);
        let (cx0, cx1) = (
            (bbox.min.x / self.cell_size).floor() as i64,
            (bbox.max.x / self.cell_size).floor() as i64,
        );
        let (cy0, cy1) = (
            (bbox.min.y / self.cell_size).floor() as i64,
            (bbox.max.y / self.cell_size).floor() as i64,
        );
        let (ct0, ct1) = (a.t.bucket_index(self.time_bucket), b.t.bucket_index(self.time_bucket));
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                for ct in ct0..=ct1 {
                    self.cells.entry((cx, cy, ct)).or_default().push(entry_id);
                }
            }
        }
    }

    /// Number of indexed segments.
    pub fn segment_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of occupied cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Exact window query: ids of objects whose stored motion enters
    /// `window.bbox` during `[window.t0, window.t1]`, ascending.
    pub fn objects_in_window(&self, window: &QueryWindow) -> Vec<ObjectId> {
        crate::query::count_query("window_grid");
        let mut seen_entries: HashSet<u32> = HashSet::new();
        let mut hits: HashSet<ObjectId> = HashSet::new();
        let (cx0, cx1) = (
            (window.bbox.min.x / self.cell_size).floor() as i64,
            (window.bbox.max.x / self.cell_size).floor() as i64,
        );
        let (cy0, cy1) = (
            (window.bbox.min.y / self.cell_size).floor() as i64,
            (window.bbox.max.y / self.cell_size).floor() as i64,
        );
        let (ct0, ct1) = (
            window.t0.bucket_index(self.time_bucket),
            window.t1.bucket_index(self.time_bucket),
        );
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                for ct in ct0..=ct1 {
                    let Some(ids) = self.cells.get(&(cx, cy, ct)) else { continue };
                    for &eid in ids {
                        if !seen_entries.insert(eid) {
                            continue;
                        }
                        let e = &self.entries[eid as usize];
                        if hits.contains(&e.object) {
                            continue;
                        }
                        if segment_enters_window(&e.a, &e.b, window) {
                            hits.insert(e.object);
                        }
                    }
                }
            }
        }
        let mut out: Vec<ObjectId> = hits.into_iter().collect();
        out.sort_unstable();
        out
    }
}

/// Exact predicate: does the linear motion `a → b` enter `window.bbox`
/// at some instant within `[window.t0, window.t1]`?
///
/// The motion is clipped to the overlap of `[a.t, b.t]` and the query
/// interval, then the clipped spatial sub-segment is tested against the
/// rectangle.
pub(crate) fn segment_enters_window(a: &Fix, b: &Fix, window: &QueryWindow) -> bool {
    let lo = if a.t > window.t0 { a.t } else { window.t0 };
    let hi = if b.t < window.t1 { b.t } else { window.t1 };
    if hi < lo {
        return false;
    }
    let p0 = Fix::interpolate(a, b, lo);
    let p1 = Fix::interpolate(a, b, hi);
    window.bbox.intersects_segment(&Segment::new(p0, p1))
}

/// Reference full-scan implementation of the window query; the grid and
/// R-tree paths are tested for equivalence against it.
pub fn scan_objects_in_window(store: &MovingObjectStore, window: &QueryWindow) -> Vec<ObjectId> {
    let mut out = Vec::new();
    for id in store.object_ids() {
        let Some(fixes) = store.stored_fixes(id) else { continue };
        let hit = if fixes.len() == 1 {
            window.t0 <= fixes[0].t
                && fixes[0].t <= window.t1
                && window.bbox.contains(fixes[0].pos)
        } else {
            fixes.windows(2).any(|w| segment_enters_window(&w[0], &w[1], window))
        };
        if hit {
            out.push(id);
        }
    }
    out
}

#[allow(dead_code)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<GridIndex>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::IngestMode;
    use traj_geom::Point2;
    use traj_model::{Timestamp, Trajectory};

    fn window(x0: f64, y0: f64, x1: f64, y1: f64, t0: f64, t1: f64) -> QueryWindow {
        QueryWindow {
            bbox: Bbox::from_corners(Point2::new(x0, y0), Point2::new(x1, y1)),
            t0: Timestamp::from_secs(t0),
            t1: Timestamp::from_secs(t1),
        }
    }

    fn demo_store() -> MovingObjectStore {
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        // Object 1: west→east along y=0, 10 m/s.
        s.insert_trajectory(
            1,
            &Trajectory::from_triples((0..100).map(|i| (i as f64 * 10.0, i as f64 * 100.0, 0.0)))
                .unwrap(),
        )
        .unwrap();
        // Object 2: south→north along x=5000.
        s.insert_trajectory(
            2,
            &Trajectory::from_triples((0..100).map(|i| (i as f64 * 10.0, 5000.0, i as f64 * 100.0 - 5000.0)))
                .unwrap(),
        )
        .unwrap();
        s
    }

    #[test]
    fn finds_object_crossing_window() {
        let s = demo_store();
        let idx = GridIndex::build(&s, 500.0, 100.0);
        // Object 1 is near x=2000 at t≈200.
        let w = window(1900.0, -50.0, 2100.0, 50.0, 150.0, 250.0);
        assert_eq!(idx.objects_in_window(&w), vec![1]);
    }

    #[test]
    fn time_interval_excludes_wrong_epoch() {
        let s = demo_store();
        let idx = GridIndex::build(&s, 500.0, 100.0);
        // Same rectangle, but queried when object 1 is long past it.
        let w = window(1900.0, -50.0, 2100.0, 50.0, 800.0, 990.0);
        assert!(idx.objects_in_window(&w).is_empty());
    }

    #[test]
    fn equivalence_with_scan_on_many_windows() {
        let s = demo_store();
        let idx = GridIndex::build(&s, 300.0, 50.0);
        for i in 0..40 {
            let cx = (i as f64) * 250.0;
            let w = window(cx, -500.0, cx + 400.0, 500.0, i as f64 * 20.0, i as f64 * 20.0 + 300.0);
            assert_eq!(
                idx.objects_in_window(&w),
                scan_objects_in_window(&s, &w),
                "window {i}"
            );
        }
    }

    #[test]
    fn multiple_objects_in_one_window() {
        let s = demo_store();
        let idx = GridIndex::build(&s, 500.0, 100.0);
        // Both pass near (5000, 0) around t=500.
        let w = window(4000.0, -1000.0, 6000.0, 1000.0, 400.0, 600.0);
        assert_eq!(idx.objects_in_window(&w), vec![1, 2]);
    }

    #[test]
    fn single_fix_object_is_findable() {
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        s.append(7, Fix::from_parts(100.0, 50.0, 50.0)).unwrap();
        let idx = GridIndex::build(&s, 100.0, 100.0);
        let hit = window(0.0, 0.0, 100.0, 100.0, 50.0, 150.0);
        let miss_time = window(0.0, 0.0, 100.0, 100.0, 150.0, 250.0);
        assert_eq!(idx.objects_in_window(&hit), vec![7]);
        assert!(idx.objects_in_window(&miss_time).is_empty());
        assert_eq!(scan_objects_in_window(&s, &hit), vec![7]);
    }

    #[test]
    fn build_counts() {
        let s = demo_store();
        let idx = GridIndex::build(&s, 500.0, 100.0);
        assert_eq!(idx.segment_count(), 2 * 99);
        assert!(idx.cell_count() > 0);
    }

    #[test]
    fn motion_through_window_between_samples_is_detected() {
        // Object samples bracket the window: at t=0 it is west of the
        // box, at t=10 east of it — the *interpolated* motion crosses.
        let mut s = MovingObjectStore::new(IngestMode::Raw);
        s.insert_trajectory(
            3,
            &Trajectory::from_triples([(0.0, -1000.0, 0.0), (10.0, 1000.0, 0.0)]).unwrap(),
        )
        .unwrap();
        let idx = GridIndex::build(&s, 200.0, 10.0);
        let w = window(-50.0, -50.0, 50.0, 50.0, 0.0, 10.0);
        assert_eq!(idx.objects_in_window(&w), vec![3]);
        // But not if the time interval excludes the crossing moment
        // (crossing happens near t=5).
        let w_early = window(-50.0, -50.0, 50.0, 50.0, 0.0, 2.0);
        assert!(idx.objects_in_window(&w_early).is_empty());
    }
}
