//! Property-based tests for the synthetic workload generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_gen::route::{path_length, shortest_path};
use traj_gen::simple::{circle, random_walk, stop_and_go, straight};
use traj_gen::{
    animal_track, drive_route, pedestrian_trip, AnimalParams, GpsNoise, PedestrianParams,
    RoadNetwork, VehicleParams,
};
use traj_model::stats::TrajectoryStats;
use traj_model::Timestamp;

fn small_net(seed: u64) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    RoadNetwork::grid(8, 8, 400.0, 30.0, 3, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any OD pair on the grid routes successfully, the path follows
    /// edges, and its length is at least the straight-line distance.
    #[test]
    fn routing_is_total_and_metric(seed in 0u64..500, from in 0usize..64, to in 0usize..64) {
        let net = small_net(seed);
        let path = shortest_path(&net, from, to).expect("grid is connected");
        prop_assert_eq!(path[0], from);
        prop_assert_eq!(*path.last().unwrap(), to);
        for w in path.windows(2) {
            prop_assert!(net.edge_between(w[0], w[1]).is_some());
        }
        let crow = net.position(from).distance(net.position(to));
        prop_assert!(path_length(&net, &path) + 1e-6 >= crow);
    }

    /// Driving any route yields a physically sane sampled trajectory:
    /// bounded speeds, endpoints at the route's ends, regular samples.
    #[test]
    fn driving_is_physical(seed in 0u64..200, from in 0usize..64, to in 0usize..64) {
        prop_assume!(from != to);
        let net = small_net(7);
        let path = shortest_path(&net, from, to).expect("connected");
        prop_assume!(path.len() >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let t = drive_route(&net, &path, &VehicleParams::default(), 10.0, Timestamp::EPOCH, &mut rng)
            .expect("route has >= 2 nodes");
        let s = TrajectoryStats::of(&t);
        prop_assert!(s.max_speed_ms <= 25.0, "speed {}", s.max_speed_ms);
        prop_assert!(t.first().pos.distance(net.position(from)) < 1.0);
        prop_assert!(t.last().pos.distance(net.position(to)) < 1.0);
        prop_assert!(s.length_m + 1e-6 >= s.displacement_m);
    }

    /// GPS noise preserves timestamps and has bounded excursions.
    #[test]
    fn noise_is_bounded_and_time_preserving(seed in 0u64..500, sigma in 0.5..10.0f64, rho in 0.0..0.95f64) {
        let clean = straight(200, 10.0, 12.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let noisy = GpsNoise::new(sigma, rho).apply(&clean, &mut rng);
        prop_assert_eq!(noisy.len(), clean.len());
        for (a, b) in noisy.fixes().iter().zip(clean.fixes()) {
            prop_assert_eq!(a.t, b.t);
            // 6σ bound fails with probability ~1e-9 per sample.
            prop_assert!(a.pos.distance(b.pos) < 6.0 * sigma * std::f64::consts::SQRT_2);
        }
    }

    /// Pedestrians never exceed running speed; animals never exceed
    /// their transit envelope.
    #[test]
    fn movers_respect_speed_envelopes(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ped = pedestrian_trip(&PedestrianParams::default(), &mut rng);
        prop_assert!(TrajectoryStats::of(&ped).max_speed_ms < 2.5);
        let mut rng = StdRng::seed_from_u64(seed);
        let animal = animal_track(&AnimalParams::default(), &mut rng);
        // transit_speed 2.5 × factor ≤ 1.3.
        prop_assert!(TrajectoryStats::of(&animal).max_speed_ms <= 2.5 * 1.3 + 1e-9);
    }

    /// The simple generators honour their closed-form statistics.
    #[test]
    fn simple_generators_closed_forms(n in 2usize..200, dt in 0.5..20.0f64, speed in 0.5..30.0f64) {
        let s = straight(n, dt, speed);
        let st = TrajectoryStats::of(&s);
        prop_assert!((st.avg_speed_ms - speed).abs() < 1e-9);
        prop_assert_eq!(st.n_points, n);

        let c = circle(n, dt, 100.0, 0.05);
        for f in c.fixes() {
            prop_assert!((f.pos.distance(traj_geom::Point2::ORIGIN) - 100.0).abs() < 1e-9);
        }

        let w = random_walk(&mut StdRng::seed_from_u64(1), n, dt, 5.0);
        prop_assert_eq!(w.len(), n);

        let sg = stop_and_go(2, 3, 2, dt, speed);
        prop_assert_eq!(sg.len(), 2 * 5 + 1);
    }
}
