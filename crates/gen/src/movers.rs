//! Moving objects of different nature (the paper's §5 future work).
//!
//! "Having a clear understanding of moving object behaviour helps in
//! making these \[threshold\] choices, and we plan to look into the issue
//! of moving objects of different nature." This module provides two
//! non-vehicular movement models so that threshold guidance can actually
//! be studied per object class:
//!
//! * [`pedestrian_trip`] — waypoint walking: a pedestrian strolls
//!   between successive waypoints at ~1.4 m/s with per-step heading
//!   wobble and frequent pauses (shop windows, crossings);
//! * [`animal_track`] — a correlated random walk (CRW) with
//!   area-restricted search: long, fairly straight *transit* bouts
//!   alternate with slow, tortuous *foraging* bouts — the standard
//!   two-state model in movement ecology.
//!
//! Both emit the same `⟨t, x, y⟩` streams as the car model, so every
//! compressor and error notion applies unchanged; `traj-eval`'s
//! `object_classes` extension experiment compares the compression/error
//! trade-off across the three classes.

use rand::Rng;
use traj_geom::{Point2, Vec2};
use traj_model::{Fix, Timestamp, Trajectory};

/// Parameters of the pedestrian model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PedestrianParams {
    /// Preferred walking speed, m/s.
    pub walk_speed: f64,
    /// Std-dev of per-step heading wobble, radians.
    pub heading_wobble: f64,
    /// Probability of pausing at each waypoint.
    pub pause_probability: f64,
    /// Pause duration range, seconds.
    pub pause_duration: (f64, f64),
    /// Number of waypoints in the stroll.
    pub waypoints: usize,
    /// Mean leg length between waypoints, metres.
    pub leg_length: f64,
    /// Sampling interval, seconds.
    pub sample_interval: f64,
}

impl Default for PedestrianParams {
    fn default() -> Self {
        PedestrianParams {
            walk_speed: 1.4,
            heading_wobble: 0.25,
            pause_probability: 0.35,
            pause_duration: (5.0, 90.0),
            waypoints: 12,
            leg_length: 120.0,
            sample_interval: 10.0,
        }
    }
}

/// Generates a pedestrian stroll starting at the origin.
///
/// # Panics
/// Panics on non-positive speeds/intervals or zero waypoints.
pub fn pedestrian_trip<R: Rng>(params: &PedestrianParams, rng: &mut R) -> Trajectory {
    assert!(params.walk_speed > 0.0, "walk_speed must be positive");
    assert!(params.sample_interval > 0.0, "sample_interval must be positive");
    assert!(params.waypoints >= 1, "need at least one waypoint");
    assert!(params.leg_length > 0.0, "leg_length must be positive");

    let mut fixes = Vec::new();
    let mut t = 0.0f64;
    let mut pos = Point2::ORIGIN;
    let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let dt = params.sample_interval;
    fixes.push(Fix::new(Timestamp::from_secs(t), pos));

    for _ in 0..params.waypoints {
        // Pick the next waypoint roughly ahead.
        heading += rng.gen_range(-1.2..1.2);
        let leg = params.leg_length * rng.gen_range(0.4..1.8);
        let target = pos + Vec2::new(heading.cos(), heading.sin()) * leg;
        // Walk toward it with heading wobble.
        while pos.distance(target) > params.walk_speed * dt {
            let to_target = (target - pos).angle();
            let wobble = rng.gen_range(-1.0..1.0) * params.heading_wobble;
            let dir = to_target + wobble;
            pos += Vec2::new(dir.cos(), dir.sin()) * params.walk_speed * dt
                * rng.gen_range(0.8..1.1);
            t += dt;
            fixes.push(Fix::new(Timestamp::from_secs(t), pos));
        }
        // Possibly pause.
        if rng.gen_bool(params.pause_probability) {
            let pause = rng.gen_range(params.pause_duration.0..=params.pause_duration.1);
            let steps = (pause / dt).ceil() as usize;
            for _ in 0..steps {
                t += dt;
                fixes.push(Fix::new(Timestamp::from_secs(t), pos));
            }
        }
    }
    // lint: allow(panic) timestamps advance by a strictly positive dt
    // each step, so monotonicity holds by construction
    Trajectory::new(fixes).expect("monotone time by construction")
}

/// Parameters of the two-state animal correlated random walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnimalParams {
    /// Transit speed, m/s (e.g. a migrating ungulate).
    pub transit_speed: f64,
    /// Foraging speed, m/s.
    pub forage_speed: f64,
    /// Turning-angle concentration in transit (higher = straighter);
    /// std-dev of the wrapped-normal turning angle is `1/κ`.
    pub transit_kappa: f64,
    /// Turning-angle concentration while foraging (low = tortuous).
    pub forage_kappa: f64,
    /// Mean bout length in steps for each state (transit, forage).
    pub bout_steps: (f64, f64),
    /// Number of samples to generate.
    pub steps: usize,
    /// Sampling interval, seconds (wildlife tags report sparsely).
    pub sample_interval: f64,
}

impl Default for AnimalParams {
    fn default() -> Self {
        AnimalParams {
            transit_speed: 2.5,
            forage_speed: 0.4,
            transit_kappa: 8.0,
            forage_kappa: 1.2,
            bout_steps: (40.0, 25.0),
            steps: 300,
            sample_interval: 30.0,
        }
    }
}

/// Generates a two-state correlated-random-walk animal track starting at
/// the origin.
///
/// # Panics
/// Panics on non-positive speeds, intervals, concentrations or step
/// counts.
pub fn animal_track<R: Rng>(params: &AnimalParams, rng: &mut R) -> Trajectory {
    assert!(params.transit_speed > 0.0 && params.forage_speed > 0.0, "speeds must be positive");
    assert!(params.sample_interval > 0.0, "sample_interval must be positive");
    assert!(params.transit_kappa > 0.0 && params.forage_kappa > 0.0, "kappas must be positive");
    assert!(params.steps >= 1, "need at least one step");
    assert!(params.bout_steps.0 >= 1.0 && params.bout_steps.1 >= 1.0, "bouts must last ≥ 1 step");

    let mut fixes = Vec::with_capacity(params.steps + 1);
    let mut pos = Point2::ORIGIN;
    let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut transit = true;
    let mut bout_left = params.bout_steps.0;
    let dt = params.sample_interval;
    fixes.push(Fix::new(Timestamp::EPOCH, pos));

    for i in 1..=params.steps {
        // Exponential-ish bout switching.
        bout_left -= 1.0;
        if bout_left <= 0.0 {
            transit = !transit;
            let mean = if transit { params.bout_steps.0 } else { params.bout_steps.1 };
            bout_left = mean * rng.gen_range(0.5..1.5);
        }
        let (speed, kappa) = if transit {
            (params.transit_speed, params.transit_kappa)
        } else {
            (params.forage_speed, params.forage_kappa)
        };
        // Wrapped-normal-ish turning angle with std 1/κ (sum of three
        // uniforms ≈ normal).
        let turn: f64 = (0..3).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / kappa;
        heading += turn;
        let step_speed = speed * rng.gen_range(0.7..1.3);
        pos += Vec2::new(heading.cos(), heading.sin()) * step_speed * dt;
        fixes.push(Fix::new(Timestamp::from_secs(i as f64 * dt), pos));
    }
    // lint: allow(panic) timestamps advance by a strictly positive dt
    // each step, so monotonicity holds by construction
    Trajectory::new(fixes).expect("monotone time by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traj_model::stats::TrajectoryStats;

    #[test]
    fn pedestrian_speeds_are_pedestrian() {
        let t = pedestrian_trip(&PedestrianParams::default(), &mut StdRng::seed_from_u64(3));
        let s = TrajectoryStats::of(&t);
        assert!(s.max_speed_ms < 2.5, "max speed {} too fast for walking", s.max_speed_ms);
        assert!(s.avg_speed_ms < 1.6, "avg {} too fast", s.avg_speed_ms);
        assert!(s.n_points > 30, "too few samples: {}", s.n_points);
    }

    #[test]
    fn pedestrian_pauses_produce_stationary_samples() {
        let params = PedestrianParams {
            pause_probability: 1.0,
            pause_duration: (30.0, 60.0),
            ..PedestrianParams::default()
        };
        let t = pedestrian_trip(&params, &mut StdRng::seed_from_u64(4));
        let still = t
            .segments()
            .filter(|(a, b)| a.pos.distance(b.pos) < 1e-9)
            .count();
        assert!(still >= params.waypoints, "expected pauses, found {still}");
    }

    #[test]
    fn animal_track_has_two_speed_regimes() {
        let t = animal_track(&AnimalParams::default(), &mut StdRng::seed_from_u64(5));
        let speeds: Vec<f64> = t.segments().filter_map(|(a, b)| a.speed_to(b)).collect();
        let fast = speeds.iter().filter(|&&v| v > 1.5).count();
        let slow = speeds.iter().filter(|&&v| v < 0.8).count();
        assert!(fast > 20, "transit bouts missing ({fast})");
        assert!(slow > 20, "foraging bouts missing ({slow})");
    }

    #[test]
    fn transit_is_straighter_than_foraging() {
        // Heading changes are smaller in transit: compare mean absolute
        // turning angle among fast vs slow steps.
        let t = animal_track(&AnimalParams::default(), &mut StdRng::seed_from_u64(6));
        let fixes = t.fixes();
        let mut fast_turns = Vec::new();
        let mut slow_turns = Vec::new();
        for w in fixes.windows(3) {
            let v1 = w[1].pos - w[0].pos;
            let v2 = w[2].pos - w[1].pos;
            let speed = w[0].speed_to(&w[1]).unwrap_or(0.0);
            let turn = {
                let a = v2.angle() - v1.angle();
                a.abs().min(std::f64::consts::TAU - a.abs())
            };
            if speed > 1.5 {
                fast_turns.push(turn);
            } else if speed < 0.8 {
                slow_turns.push(turn);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&fast_turns) < mean(&slow_turns),
            "transit {} not straighter than foraging {}",
            mean(&fast_turns),
            mean(&slow_turns)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = animal_track(&AnimalParams::default(), &mut StdRng::seed_from_u64(7));
        let b = animal_track(&AnimalParams::default(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = pedestrian_trip(&PedestrianParams::default(), &mut StdRng::seed_from_u64(7));
        let d = pedestrian_trip(&PedestrianParams::default(), &mut StdRng::seed_from_u64(7));
        assert_eq!(c, d);
    }

    #[test]
    fn sample_grid_is_regular() {
        let t = animal_track(&AnimalParams::default(), &mut StdRng::seed_from_u64(8));
        for (a, b) in t.segments() {
            assert!(((b.t - a.t).as_secs() - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "speeds")]
    fn rejects_bad_params() {
        let params = AnimalParams { forage_speed: 0.0, ..AnimalParams::default() };
        let _ = animal_track(&params, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn pedestrian_duration_is_positive() {
        let t = pedestrian_trip(&PedestrianParams::default(), &mut StdRng::seed_from_u64(9));
        assert!(t.duration() > traj_model::TimeDelta::from_secs(0.0));
    }
}
