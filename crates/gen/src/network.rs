//! A synthetic road network: jittered urban grid with arterials and a
//! faster periphery.
//!
//! The paper's cars "travelled different roads in urban and rural areas";
//! the network reproduces that mix. Nodes form a grid with positional
//! jitter (so streets are not perfectly straight and turns have varied
//! angles); every `k`-th row/column is an arterial with a higher speed
//! limit, and the outermost ring is classed rural — long, fast stretches
//! that yield the high-speed, high-compression parts of the workload.

use rand::Rng;
use traj_geom::Point2;

/// Index of a node in the network.
pub type NodeId = usize;

/// Road classes with their speed limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadClass {
    /// Residential/urban street.
    Urban,
    /// Urban arterial.
    Arterial,
    /// Rural road on the periphery.
    Rural,
}

impl RoadClass {
    /// Speed limit in metres/second (50, 70 and 80 km/h respectively).
    #[inline]
    pub fn speed_limit(self) -> f64 {
        match self {
            RoadClass::Urban => 50.0 / 3.6,
            RoadClass::Arterial => 70.0 / 3.6,
            RoadClass::Rural => 80.0 / 3.6,
        }
    }
}

/// A directed edge of the road network (each undirected street is stored
/// as two directed edges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Destination node.
    pub to: NodeId,
    /// Edge length in metres.
    pub length: f64,
    /// Road class (determines speed limit).
    pub class: RoadClass,
}

/// A road network: nodes with planar positions and a directed adjacency
/// list.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    positions: Vec<Point2>,
    adjacency: Vec<Vec<Edge>>,
    cols: usize,
    rows: usize,
}

impl RoadNetwork {
    /// Builds a `cols × rows` grid with `spacing` metres between
    /// neighbouring intersections, jittered by up to `jitter` metres, an
    /// arterial every `arterial_every` rows/columns, and a rural
    /// outermost ring.
    ///
    /// # Panics
    /// Panics for degenerate dimensions (`cols`/`rows` < 2), non-positive
    /// spacing, or `arterial_every == 0`.
    pub fn grid<R: Rng>(
        cols: usize,
        rows: usize,
        spacing: f64,
        jitter: f64,
        arterial_every: usize,
        rng: &mut R,
    ) -> Self {
        assert!(cols >= 2 && rows >= 2, "grid must be at least 2×2");
        assert!(spacing > 0.0 && spacing.is_finite(), "spacing must be positive");
        assert!(jitter >= 0.0 && jitter < spacing / 2.0, "jitter must be < spacing/2");
        assert!(arterial_every >= 1, "arterial_every must be >= 1");

        let mut positions = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let jx = if jitter > 0.0 { rng.gen_range(-jitter..jitter) } else { 0.0 };
                let jy = if jitter > 0.0 { rng.gen_range(-jitter..jitter) } else { 0.0 };
                positions.push(Point2::new(c as f64 * spacing + jx, r as f64 * spacing + jy));
            }
        }

        let idx = |c: usize, r: usize| r * cols + c;
        let classify = |c0: usize, r0: usize, c1: usize, r1: usize| -> RoadClass {
            let on_rim = |c: usize, r: usize| c == 0 || r == 0 || c == cols - 1 || r == rows - 1;
            if on_rim(c0, r0) && on_rim(c1, r1) {
                return RoadClass::Rural;
            }
            // A horizontal street follows row r0; vertical follows col c0.
            let arterial = if r0 == r1 {
                r0.is_multiple_of(arterial_every)
            } else {
                c0.is_multiple_of(arterial_every)
            };
            if arterial {
                RoadClass::Arterial
            } else {
                RoadClass::Urban
            }
        };

        let mut adjacency = vec![Vec::with_capacity(4); cols * rows];
        let connect = |a: NodeId, b: NodeId, class: RoadClass, adj: &mut Vec<Vec<Edge>>, pos: &[Point2]| {
            let length = pos[a].distance(pos[b]);
            adj[a].push(Edge { to: b, length, class });
            adj[b].push(Edge { to: a, length, class });
        };
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    let class = classify(c, r, c + 1, r);
                    connect(idx(c, r), idx(c + 1, r), class, &mut adjacency, &positions);
                }
                if r + 1 < rows {
                    let class = classify(c, r, c, r + 1);
                    connect(idx(c, r), idx(c, r + 1), class, &mut adjacency, &positions);
                }
            }
        }
        RoadNetwork { positions, adjacency, cols, rows }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the network has no nodes (never true for a constructed
    /// grid).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Grid dimensions `(cols, rows)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Position of node `n`.
    #[inline]
    pub fn position(&self, n: NodeId) -> Point2 {
        self.positions[n]
    }

    /// Outgoing edges of node `n`.
    #[inline]
    pub fn edges(&self, n: NodeId) -> &[Edge] {
        &self.adjacency[n]
    }

    /// The node closest to `p` (linear scan; the generator calls this a
    /// handful of times per trip).
    pub fn nearest_node(&self, p: Point2) -> NodeId {
        let mut best = (0usize, f64::INFINITY);
        for (i, q) in self.positions.iter().enumerate() {
            let d = q.distance_sq(p);
            if d < best.1 {
                best = (i, d);
            }
        }
        best.0
    }

    /// The edge class between two *adjacent* nodes, if they are
    /// connected.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<Edge> {
        self.adjacency[a].iter().copied().find(|e| e.to == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(7);
        RoadNetwork::grid(8, 6, 500.0, 40.0, 4, &mut rng)
    }

    #[test]
    fn grid_has_expected_node_and_edge_counts() {
        let n = net();
        assert_eq!(n.len(), 48);
        // Undirected edges: horizontal 7×6 + vertical 8×5 = 82; directed 164.
        let directed: usize = (0..n.len()).map(|i| n.edges(i).len()).sum();
        assert_eq!(directed, 164);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let n = net();
        for a in 0..n.len() {
            for e in n.edges(a) {
                assert!(
                    n.edges(e.to).iter().any(|b| b.to == a),
                    "edge {a}→{} missing reverse",
                    e.to
                );
            }
        }
    }

    #[test]
    fn edge_lengths_match_node_distances() {
        let n = net();
        for a in 0..n.len() {
            for e in n.edges(a) {
                let d = n.position(a).distance(n.position(e.to));
                assert!((e.length - d).abs() < 1e-9);
                // Jitter keeps lengths near the nominal spacing.
                assert!(e.length > 350.0 && e.length < 650.0, "length {}", e.length);
            }
        }
    }

    #[test]
    fn rim_edges_are_rural_interior_mix() {
        let n = net();
        let (cols, rows) = n.dims();
        let idx = |c: usize, r: usize| r * cols + c;
        // Bottom rim edge (0,0)-(1,0) is rural.
        let rim = n.edge_between(idx(0, 0), idx(1, 0)).unwrap();
        assert_eq!(rim.class, RoadClass::Rural);
        // Interior arterial: row 4 (4 % 4 == 0) between interior columns.
        let art = n.edge_between(idx(2, 4), idx(3, 4)).unwrap();
        assert_eq!(art.class, RoadClass::Arterial);
        // Plain urban: row 2, interior.
        let urb = n.edge_between(idx(2, 2), idx(3, 2)).unwrap();
        assert_eq!(urb.class, RoadClass::Urban);
        let _ = rows;
    }

    #[test]
    fn speed_limits_are_ordered() {
        assert!(RoadClass::Urban.speed_limit() < RoadClass::Arterial.speed_limit());
        assert!(RoadClass::Arterial.speed_limit() < RoadClass::Rural.speed_limit());
    }

    #[test]
    fn nearest_node_finds_the_obvious_one() {
        let n = net();
        for probe in [0usize, 13, 47] {
            let found = n.nearest_node(n.position(probe));
            assert_eq!(found, probe);
        }
    }

    #[test]
    fn determinism_under_same_seed() {
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        let a = RoadNetwork::grid(5, 5, 400.0, 30.0, 3, &mut r1);
        let b = RoadNetwork::grid(5, 5, 400.0, 30.0, 3, &mut r2);
        for i in 0..a.len() {
            assert_eq!(a.position(i), b.position(i));
        }
    }

    #[test]
    #[should_panic(expected = "2×2")]
    fn rejects_degenerate_grid() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = RoadNetwork::grid(1, 5, 400.0, 0.0, 3, &mut rng);
    }
}
