//! # traj-gen — synthetic GPS trajectory workloads
//!
//! The paper evaluates on ten private GPS car traces "which travelled
//! different roads in urban and rural areas" (Table 2). Those traces are
//! not available; this crate is the documented substitution (see
//! `DESIGN.md`): a road-network micro-simulator producing `⟨t, x, y⟩`
//! series with the same observable characteristics — car kinematics with
//! junction slow-downs and stops, a 10-second sampling interval, GPS
//! noise, and trip statistics calibrated to the paper's Table 2 bands.
//!
//! Pipeline:
//!
//! 1. [`network::RoadNetwork`] — a jittered grid of urban streets with
//!    arterial rows/columns and faster peripheral "rural" roads;
//! 2. [`route`] — travel-time shortest paths between origin/destination
//!    nodes;
//! 3. [`vehicle`] — a kinematic car model (acceleration/braking
//!    envelopes, curve slow-down, random junction stops) driven along the
//!    route and sampled at a fixed interval;
//! 4. [`noise`] — AR(1)-correlated GPS position noise;
//! 5. [`dataset`] — the ten-trajectory [`dataset::paper_dataset`] used by
//!    every experiment, plus parameterized trip generation;
//! 6. [`simple`] — closed-form synthetic trajectories (straight runs,
//!    circles, random walks, stop-and-go) for unit tests and benches;
//! 7. [`fleet`] — O(1) closed-form fleet synthesis for ingest load
//!    generation at 100k–1M movers (`trajc serve --load-gen`).

pub mod dataset;
pub mod fleet;
pub mod movers;
pub mod network;
pub mod noise;
pub mod route;
pub mod simple;
pub mod vehicle;

pub use dataset::{paper_dataset, TripConfig};
pub use fleet::{Fleet, FleetConfig};
pub use movers::{animal_track, pedestrian_trip, AnimalParams, PedestrianParams};
pub use network::{NodeId, RoadClass, RoadNetwork};
pub use noise::GpsNoise;
pub use vehicle::{drive_route, VehicleParams};
