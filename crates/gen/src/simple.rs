//! Closed-form synthetic trajectories for tests, benches and examples.

use rand::Rng;
use traj_model::Trajectory;

/// Straight run at constant speed: `n` fixes every `dt` seconds moving
/// `speed` m/s along +x from the origin.
///
/// # Panics
/// Panics for `n < 1` or non-positive `dt`.
pub fn straight(n: usize, dt: f64, speed: f64) -> Trajectory {
    assert!(n >= 1, "need at least one fix");
    assert!(dt > 0.0, "dt must be positive");
    Trajectory::from_triples((0..n).map(|i| {
        let t = i as f64 * dt;
        (t, speed * t, 0.0)
    }))
    // lint: allow(panic) t = i * dt with dt > 0 asserted above, so times
    // strictly increase by construction
    .expect("strictly increasing times by construction")
}

/// Circular motion: `n` fixes every `dt` seconds on a circle of `radius`
/// metres at `angular_speed` rad/s, centred on the origin.
pub fn circle(n: usize, dt: f64, radius: f64, angular_speed: f64) -> Trajectory {
    assert!(n >= 1, "need at least one fix");
    assert!(dt > 0.0, "dt must be positive");
    assert!(radius > 0.0, "radius must be positive");
    Trajectory::from_triples((0..n).map(|i| {
        let t = i as f64 * dt;
        let a = angular_speed * t;
        (t, radius * a.cos(), radius * a.sin())
    }))
    // lint: allow(panic) t = i * dt with dt > 0 asserted above, so times
    // strictly increase by construction
    .expect("strictly increasing times by construction")
}

/// Random walk: steps with independent Gaussian-ish displacements of
/// standard deviation `step_sigma` per axis (uniform approximation is
/// fine for workload purposes; exact normality is irrelevant here).
pub fn random_walk<R: Rng>(rng: &mut R, n: usize, dt: f64, step_sigma: f64) -> Trajectory {
    assert!(n >= 1, "need at least one fix");
    assert!(dt > 0.0, "dt must be positive");
    assert!(step_sigma >= 0.0, "step_sigma must be >= 0");
    let (mut x, mut y) = (0.0f64, 0.0f64);
    Trajectory::from_triples((0..n).map(|i| {
        let t = i as f64 * dt;
        if i > 0 {
            // Sum of three uniforms ≈ normal; scaled to σ = step_sigma.
            let g = |rng: &mut R| -> f64 {
                let s: f64 = (0..3).map(|_| rng.gen_range(-1.0..1.0)).sum();
                s * step_sigma
            };
            x += g(rng);
            y += g(rng);
        }
        (t, x, y)
    }))
    // lint: allow(panic) t = i * dt with dt > 0 asserted above, so times
    // strictly increase by construction
    .expect("strictly increasing times by construction")
}

/// Stop-and-go traffic: alternating cruise (at `speed` m/s for
/// `go_fixes` fixes) and standstill (for `stop_fixes` fixes), `cycles`
/// times — the adversarial workload for purely spatial compressors.
pub fn stop_and_go(cycles: usize, go_fixes: usize, stop_fixes: usize, dt: f64, speed: f64) -> Trajectory {
    assert!(cycles >= 1 && go_fixes >= 1, "need at least one cycle of motion");
    assert!(dt > 0.0, "dt must be positive");
    let mut triples = Vec::new();
    let mut t = 0.0;
    let mut x = 0.0;
    for _ in 0..cycles {
        for _ in 0..go_fixes {
            triples.push((t, x, 0.0));
            t += dt;
            x += speed * dt;
        }
        for _ in 0..stop_fixes {
            triples.push((t, x, 0.0));
            t += dt;
        }
    }
    triples.push((t, x, 0.0));
    // lint: allow(panic) t advances by a positive dt every push, so the
    // triples are strictly increasing by construction
    Trajectory::from_triples(triples).expect("strictly increasing times by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traj_model::stats::TrajectoryStats;

    #[test]
    fn straight_has_constant_speed() {
        let t = straight(100, 10.0, 15.0);
        let s = TrajectoryStats::of(&t);
        assert!((s.avg_speed_ms - 15.0).abs() < 1e-9);
        assert!((s.max_speed_ms - 15.0).abs() < 1e-9);
        assert_eq!(s.n_points, 100);
    }

    #[test]
    fn circle_stays_on_circle() {
        let t = circle(50, 1.0, 100.0, 0.1);
        for f in t.fixes() {
            let r = f.pos.distance(traj_geom::Point2::ORIGIN);
            assert!((r - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn circle_speed_is_radius_times_omega() {
        let t = circle(100, 0.1, 50.0, 0.2);
        let s = TrajectoryStats::of(&t);
        // Chord speed slightly under arc speed rω = 10.
        assert!(s.avg_speed_ms > 9.5 && s.avg_speed_ms <= 10.0, "{}", s.avg_speed_ms);
    }

    #[test]
    fn random_walk_is_deterministic_per_seed() {
        let a = random_walk(&mut StdRng::seed_from_u64(9), 100, 1.0, 5.0);
        let b = random_walk(&mut StdRng::seed_from_u64(9), 100, 1.0, 5.0);
        assert_eq!(a, b);
    }

    #[test]
    fn stop_and_go_alternates() {
        let t = stop_and_go(3, 5, 4, 10.0, 10.0);
        assert_eq!(t.len(), 3 * 9 + 1);
        let s = TrajectoryStats::of(&t);
        // 3 cycles × 5 go-fixes × 100 m.
        assert!((s.length_m - 1500.0).abs() < 1e-9);
        // Standstill segments exist.
        let still = t.segments().filter(|(a, b)| a.pos.distance(b.pos) < 1e-9).count();
        assert!(still >= 9, "found {still} standstill segments");
    }

    #[test]
    #[should_panic(expected = "dt")]
    fn rejects_bad_dt() {
        let _ = straight(10, 0.0, 1.0);
    }
}
