//! GPS measurement noise.
//!
//! The paper motivates its error tolerance with "we know our raw data to
//! already contain error" (§2). Consumer GPS position error is not white:
//! multipath and atmospheric effects correlate over tens of seconds. The
//! model here is a first-order autoregressive (AR(1)) process per axis:
//!
//! ```text
//! nᵢ = ρ·nᵢ₋₁ + √(1−ρ²)·σ·εᵢ,   εᵢ ~ N(0, 1)
//! ```
//!
//! which has stationary standard deviation `σ` and lag-one correlation
//! `ρ`. `ρ = 0` recovers white noise.

use rand::Rng;
use traj_geom::Vec2;
use traj_model::{Fix, Trajectory};

/// AR(1)-correlated planar GPS noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsNoise {
    /// Stationary per-axis standard deviation, metres.
    pub sigma: f64,
    /// Lag-one autocorrelation in `[0, 1)`.
    pub rho: f64,
}

impl GpsNoise {
    /// Typical consumer GPS of the paper's era: σ = 4 m, ρ = 0.8 at a
    /// 10 s sampling interval.
    pub fn consumer_gps() -> Self {
        GpsNoise { sigma: 4.0, rho: 0.8 }
    }

    /// White (uncorrelated) noise with the given σ.
    pub fn white(sigma: f64) -> Self {
        GpsNoise { sigma, rho: 0.0 }
    }

    /// Creates a noise model.
    ///
    /// # Panics
    /// Panics unless `sigma >= 0` and `0 <= rho < 1`.
    pub fn new(sigma: f64, rho: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be finite and >= 0");
        assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
        GpsNoise { sigma, rho }
    }

    /// Standard normal via Box–Muller (avoids a `rand_distr` dependency).
    fn std_normal<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Applies the noise process to every fix, returning the noisy
    /// trajectory (timestamps untouched).
    pub fn apply<R: Rng>(&self, traj: &Trajectory, rng: &mut R) -> Trajectory {
        if traj_geom::numeric::approx_zero(self.sigma, 0.0) {
            return traj.clone();
        }
        let innovation = self.sigma * (1.0 - self.rho * self.rho).sqrt();
        let mut n = Vec2::new(
            self.sigma * Self::std_normal(rng),
            self.sigma * Self::std_normal(rng),
        );
        let fixes = traj
            .fixes()
            .iter()
            .map(|f| {
                let fix = Fix::new(f.t, f.pos + n);
                n = Vec2::new(
                    self.rho * n.x + innovation * Self::std_normal(rng),
                    self.rho * n.y + innovation * Self::std_normal(rng),
                );
                fix
            })
            .collect();
        // lint: allow(panic) noise perturbs positions only; the input
        // trajectory already validated its timestamps
        Trajectory::new(fixes).expect("noise preserves timestamps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn straight(n: usize) -> Trajectory {
        Trajectory::from_triples((0..n).map(|i| (i as f64 * 10.0, i as f64 * 100.0, 0.0)))
            .unwrap()
    }

    #[test]
    fn zero_sigma_is_identity() {
        let t = straight(20);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(GpsNoise::white(0.0).apply(&t, &mut rng), t);
    }

    #[test]
    fn preserves_timestamps_and_length() {
        let t = straight(50);
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = GpsNoise::consumer_gps().apply(&t, &mut rng);
        assert_eq!(noisy.len(), t.len());
        for (a, b) in noisy.fixes().iter().zip(t.fixes()) {
            assert_eq!(a.t, b.t);
        }
    }

    #[test]
    fn empirical_sigma_close_to_nominal() {
        // Long trajectory: the per-axis deviation should estimate σ.
        let t = straight(20_000);
        let mut rng = StdRng::seed_from_u64(2);
        let sigma = 5.0;
        let noisy = GpsNoise::new(sigma, 0.5).apply(&t, &mut rng);
        let devs: Vec<f64> = noisy
            .fixes()
            .iter()
            .zip(t.fixes())
            .map(|(a, b)| a.pos.y - b.pos.y)
            .collect();
        let mean = devs.iter().sum::<f64>() / devs.len() as f64;
        let var = devs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / devs.len() as f64;
        assert!(
            (var.sqrt() - sigma).abs() < 0.5,
            "empirical σ {} vs nominal {sigma}",
            var.sqrt()
        );
    }

    #[test]
    fn correlated_noise_has_positive_lag_correlation() {
        let t = straight(20_000);
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = GpsNoise::new(4.0, 0.8).apply(&t, &mut rng);
        let devs: Vec<f64> = noisy
            .fixes()
            .iter()
            .zip(t.fixes())
            .map(|(a, b)| a.pos.x - b.pos.x)
            .collect();
        let mean = devs.iter().sum::<f64>() / devs.len() as f64;
        let var = devs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / devs.len() as f64;
        let cov = devs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (devs.len() - 1) as f64;
        let rho = cov / var;
        assert!((rho - 0.8).abs() < 0.05, "empirical ρ {rho}");
    }

    #[test]
    fn white_noise_has_no_lag_correlation() {
        let t = straight(20_000);
        let mut rng = StdRng::seed_from_u64(4);
        let noisy = GpsNoise::white(4.0).apply(&t, &mut rng);
        let devs: Vec<f64> = noisy
            .fixes()
            .iter()
            .zip(t.fixes())
            .map(|(a, b)| a.pos.x - b.pos.x)
            .collect();
        let mean = devs.iter().sum::<f64>() / devs.len() as f64;
        let var = devs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / devs.len() as f64;
        let cov = devs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (devs.len() - 1) as f64;
        assert!((cov / var).abs() < 0.05, "empirical ρ {}", cov / var);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rejects_invalid_rho() {
        let _ = GpsNoise::new(1.0, 1.0);
    }
}
