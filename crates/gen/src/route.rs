//! Travel-time shortest paths over the road network.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::network::{NodeId, RoadNetwork};

/// Heap entry for Dijkstra (min-heap by cost).
struct Entry {
    cost: f64,
    node: NodeId,
}

impl PartialEq for Entry {
    fn eq(&self, o: &Self) -> bool {
        self.cost == o.cost
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Entry {
    fn cmp(&self, o: &Self) -> Ordering {
        o.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
    }
}

/// Shortest path from `from` to `to` by free-flow travel time
/// (edge length / speed limit). Returns the node sequence including both
/// endpoints, or `None` if unreachable (cannot happen on a connected
/// grid, but the API stays honest).
pub fn shortest_path(net: &RoadNetwork, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    assert!(from < net.len() && to < net.len(), "node id out of range");
    if from == to {
        return Some(vec![from]);
    }
    let n = net.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[from] = 0.0;
    heap.push(Entry { cost: 0.0, node: from });
    while let Some(Entry { cost, node }) = heap.pop() {
        if node == to {
            break;
        }
        if cost > dist[node] {
            continue; // stale entry
        }
        for e in net.edges(node) {
            let next = cost + e.length / e.class.speed_limit();
            if next < dist[e.to] {
                dist[e.to] = next;
                prev[e.to] = node;
                heap.push(Entry { cost: next, node: e.to });
            }
        }
    }
    if dist[to].is_infinite() {
        return None;
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[cur];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Free-flow travel time of a node path, seconds.
pub fn path_travel_time(net: &RoadNetwork, path: &[NodeId]) -> f64 {
    path.windows(2)
        .map(|w| {
            // lint: allow(panic) routes are produced by shortest_path over
            // this same network; a missing edge is a router bug
            let e = net
                .edge_between(w[0], w[1])
                .expect("path must follow network edges"); // lint: allow(panic) router invariant, see above
            e.length / e.class.speed_limit()
        })
        .sum()
}

/// Total length of a node path, metres.
pub fn path_length(net: &RoadNetwork, path: &[NodeId]) -> f64 {
    path.windows(2)
        .map(|w| {
            // lint: allow(panic) same invariant as path_travel_time above
            net.edge_between(w[0], w[1])
                // lint: allow(panic) router invariant, see above
                .expect("path must follow network edges")
                .length
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(11);
        RoadNetwork::grid(10, 10, 500.0, 0.0, 4, &mut rng)
    }

    #[test]
    fn path_connects_endpoints_via_edges() {
        let n = net();
        let p = shortest_path(&n, 0, 99).unwrap();
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 99);
        for w in p.windows(2) {
            assert!(n.edge_between(w[0], w[1]).is_some(), "hop {w:?} not an edge");
        }
    }

    #[test]
    fn trivial_path_is_single_node() {
        let n = net();
        assert_eq!(shortest_path(&n, 5, 5).unwrap(), vec![5]);
    }

    #[test]
    fn path_length_at_least_manhattan_distance() {
        let n = net();
        let p = shortest_path(&n, 0, 99).unwrap();
        let len = path_length(&n, &p);
        // 9 cols + 9 rows at 500 m.
        assert!(len >= 9000.0 - 1e-6, "len {len}");
        assert!(len <= 12_000.0, "len {len} suspiciously long");
    }

    #[test]
    fn travel_time_is_positive_and_consistent() {
        let n = net();
        let p = shortest_path(&n, 3, 96).unwrap();
        let t = path_travel_time(&n, &p);
        let l = path_length(&n, &p);
        // Time must be within the bounds set by the extreme speed limits.
        assert!(t >= l / crate::network::RoadClass::Rural.speed_limit() - 1e-9);
        assert!(t <= l / crate::network::RoadClass::Urban.speed_limit() + 1e-9);
    }

    #[test]
    fn prefers_fast_roads_when_reasonable() {
        // The rim is rural (fastest): a corner-to-corner trip should cost
        // no more time than the pure inner-grid alternative.
        let n = net();
        let p = shortest_path(&n, 0, 99).unwrap();
        let t = path_travel_time(&n, &p);
        // Pure urban Manhattan path: 9000 m at 13.9 m/s ≈ 648 s.
        assert!(t <= 9000.0 / crate::network::RoadClass::Urban.speed_limit() + 1e-9);
    }

    #[test]
    fn dijkstra_is_optimal_vs_bruteforce_on_small_grid() {
        // 3×3 grid, no jitter: verify optimal cost against an exhaustive
        // Bellman-Ford style relaxation.
        let mut rng = StdRng::seed_from_u64(5);
        let n = RoadNetwork::grid(3, 3, 100.0, 0.0, 2, &mut rng);
        let mut dist = vec![f64::INFINITY; n.len()];
        dist[0] = 0.0;
        for _ in 0..n.len() {
            for a in 0..n.len() {
                if dist[a].is_finite() {
                    for e in n.edges(a) {
                        let nd = dist[a] + e.length / e.class.speed_limit();
                        if nd < dist[e.to] {
                            dist[e.to] = nd;
                        }
                    }
                }
            }
        }
        for (target, &expected) in dist.iter().enumerate() {
            let p = shortest_path(&n, 0, target).unwrap();
            let t = path_travel_time(&n, &p);
            assert!((t - expected).abs() < 1e-9, "target {target}: {t} vs {expected}");
        }
    }
}
