//! Paper-calibrated datasets: the ten-trajectory workload behind every
//! experiment.
//!
//! The paper's Table 2 characterizes its ten GPS car traces:
//!
//! | statistic      | average    | std dev    |
//! |----------------|------------|------------|
//! | duration       | 00:32:16   | 00:14:33   |
//! | speed          | 40.85 km/h | 12.63 km/h |
//! | length         | 19.95 km   | 12.84 km   |
//! | displacement   | 10.58 km   | 8.97 km    |
//! | # data points  | 200        | 100.9      |
//!
//! [`paper_dataset`] reproduces that *shape*: ten trips over a shared
//! urban/rural road network, from a short cross-neighbourhood hop to a
//! long diagonal traverse, some with via-points (errand-style wandering
//! raises the length/displacement ratio toward the paper's ≈ 1.9),
//! sampled every 10 s with consumer-GPS noise. `traj-eval`'s Table 2
//! reproduction prints the generated statistics next to the paper's.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traj_model::{Timestamp, Trajectory};

use crate::network::{NodeId, RoadNetwork};
use crate::noise::GpsNoise;
use crate::route::shortest_path;
use crate::vehicle::{drive_route, VehicleParams};

/// Configuration for a generated trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripConfig {
    /// GPS reporting interval, seconds (the paper's example uses 10 s).
    pub sample_interval: f64,
    /// GPS noise model.
    pub noise: GpsNoise,
    /// Driver/vehicle behaviour.
    pub vehicle: VehicleParams,
}

impl Default for TripConfig {
    fn default() -> Self {
        TripConfig {
            sample_interval: 10.0,
            noise: GpsNoise::consumer_gps(),
            vehicle: VehicleParams::default(),
        }
    }
}

/// Generates one trip from `from` to `to`, optionally through `vias`,
/// on `net`.
///
/// The route is the concatenation of travel-time shortest paths between
/// consecutive stops; the drive is simulated kinematically and GPS noise
/// applied.
///
/// # Panics
/// Panics if any node id is out of range or the route degenerates to a
/// single node.
pub fn generate_trip<R: Rng>(
    net: &RoadNetwork,
    from: NodeId,
    vias: &[NodeId],
    to: NodeId,
    cfg: &TripConfig,
    start_time: Timestamp,
    rng: &mut R,
) -> Trajectory {
    let mut stops = Vec::with_capacity(vias.len() + 2);
    stops.push(from);
    stops.extend_from_slice(vias);
    stops.push(to);
    let mut path: Vec<NodeId> = Vec::new();
    for w in stops.windows(2) {
        // lint: allow(panic) paper_grid() is connected by construction;
        // an unreachable stop means the generator itself is broken
        let leg = shortest_path(net, w[0], w[1]).expect("grid is connected");
        if path.is_empty() {
            path.extend(leg);
        } else {
            // Skip the duplicated junction node.
            path.extend(leg.into_iter().skip(1));
        }
    }
    // Remove immediate backtracks (A-B-A) that via concatenation can
    // produce; the vehicle model assumes forward motion through turns.
    let mut cleaned: Vec<NodeId> = Vec::with_capacity(path.len());
    for n in path {
        if cleaned.len() >= 2 && cleaned[cleaned.len() - 2] == n {
            cleaned.pop();
        } else if cleaned.last() != Some(&n) {
            cleaned.push(n);
        }
    }
    // lint: allow(panic) stops always contains from/to plus vias, so the
    // cleaned path keeps >= 2 nodes; anything else is a generator bug
    let clean = drive_route(net, &cleaned, &cfg.vehicle, cfg.sample_interval, start_time, rng)
        .expect("route has at least two nodes"); // lint: allow(panic) generator invariant, see above
    cfg.noise.apply(&clean, rng)
}

/// The road network shared by the paper-calibrated dataset: a 28×28
/// jittered grid at 700 m spacing (≈ 19 km × 19 km), arterials every 5
/// blocks, rural periphery.
pub fn paper_network(seed: u64) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x006e_6574_776f_726b);
    RoadNetwork::grid(28, 28, 700.0, 60.0, 5, &mut rng)
}

/// One trip specification: via-points, origin and destination, all in
/// grid coordinates.
type TripSpec = (&'static [(usize, usize)], (usize, usize), (usize, usize));

/// Grid-coordinate trip specifications: (vias, from, to), chosen to span
/// the paper's displacement/length spread.
const TRIP_SPECS: [TripSpec; 10] = [
    (&[], (10, 10), (13, 12)),                  // short urban hop
    (&[(12, 7)], (5, 5), (9, 12)),              // errand with a via
    (&[(14, 14)], (2, 3), (22, 8)),             // cross-town through the centre
    (&[(12, 18)], (3, 25), (24, 24)),           // northern trip with a detour
    (&[(5, 13)], (14, 2), (14, 25)),            // vertical traverse, westward bow
    (&[], (1, 1), (26, 26)),                    // long diagonal
    (&[(12, 12)], (20, 4), (6, 22)),            // diagonal with centre via
    (&[(22, 18)], (8, 20), (19, 8)),            // wandering errand
    (&[(15, 3)], (4, 14), (22, 11)),            // southern detour
    (&[(7, 10)], (12, 6), (2, 2)),              // short trip, long way round
];

/// The ten-trajectory dataset calibrated to the paper's Table 2 (see the
/// module docs). Fully deterministic for a given `seed`; the experiments
/// use `seed = 42`.
pub fn paper_dataset(seed: u64) -> Vec<Trajectory> {
    paper_dataset_with(seed, &TripConfig::default())
}

/// [`paper_dataset`] with a custom [`TripConfig`] (used by ablations,
/// e.g. noise-free datasets or different sampling intervals).
pub fn paper_dataset_with(seed: u64, cfg: &TripConfig) -> Vec<Trajectory> {
    let net = paper_network(seed);
    let (cols, _) = net.dims();
    let idx = |(c, r): (usize, usize)| -> NodeId { r * cols + c };
    TRIP_SPECS
        .iter()
        .enumerate()
        .map(|(i, (vias, from, to))| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1000 + i as u64));
            let via_ids: Vec<NodeId> = vias.iter().map(|&v| idx(v)).collect();
            generate_trip(&net, idx(*from), &via_ids, idx(*to), cfg, Timestamp::EPOCH, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_model::stats::{DatasetStats, TrajectoryStats};

    #[test]
    fn dataset_is_deterministic() {
        let a = paper_dataset(42);
        let b = paper_dataset(42);
        assert_eq!(a, b);
    }

    #[test]
    fn dataset_has_ten_trajectories() {
        assert_eq!(paper_dataset(42).len(), 10);
    }

    #[test]
    fn different_seeds_differ() {
        let a = paper_dataset(42);
        let b = paper_dataset(43);
        assert_ne!(a, b);
    }

    #[test]
    fn statistics_land_in_paper_bands() {
        // Generous bands around Table 2 — the reproduction target is the
        // *shape* of the workload, not digit-exact statistics.
        let ds = paper_dataset(42);
        let s = DatasetStats::of(&ds);
        assert!(
            (1000.0..=3400.0).contains(&s.duration_s.mean),
            "duration mean {} s",
            s.duration_s.mean
        );
        assert!(
            (28.0..=55.0).contains(&s.speed_kmh.mean),
            "speed mean {} km/h",
            s.speed_kmh.mean
        );
        assert!(
            (10.0..=32.0).contains(&s.length_km.mean),
            "length mean {} km",
            s.length_km.mean
        );
        assert!(
            (5.0..=18.0).contains(&s.displacement_km.mean),
            "displacement mean {} km",
            s.displacement_km.mean
        );
        assert!(
            (110.0..=330.0).contains(&s.n_points.mean),
            "n_points mean {}",
            s.n_points.mean
        );
        // The paper's dataset is *heterogeneous* (std ≈ half the mean).
        assert!(s.n_points.std > 40.0, "n_points std {}", s.n_points.std);
        assert!(s.length_km.std > 4.0, "length std {}", s.length_km.std);
        assert!(s.displacement_km.std > 3.0, "displacement std {}", s.displacement_km.std);
    }

    #[test]
    fn individual_trips_are_physical() {
        for (i, t) in paper_dataset(42).iter().enumerate() {
            let s = TrajectoryStats::of(t);
            assert!(s.n_points >= 20, "trip {i}: only {} points", s.n_points);
            assert!(
                s.max_speed_ms <= 25.0,
                "trip {i}: impossible speed {} m/s",
                s.max_speed_ms
            );
            assert!(
                s.length_m + 1.0 >= s.displacement_m,
                "trip {i}: length < displacement"
            );
            assert!((s.mean_interval_s - 10.0).abs() < 2.0, "trip {i}: interval drifted");
        }
    }

    #[test]
    fn wandering_trips_have_high_length_to_displacement_ratio() {
        let ds = paper_dataset(42);
        // Trip 9 (short trip, long way round) must wander.
        let s = TrajectoryStats::of(&ds[9]);
        assert!(
            s.length_m / s.displacement_m.max(1.0) > 1.3,
            "ratio {}",
            s.length_m / s.displacement_m.max(1.0)
        );
    }

    #[test]
    fn custom_config_controls_noise_and_interval() {
        let cfg = TripConfig {
            sample_interval: 5.0,
            noise: GpsNoise::white(0.0),
            vehicle: VehicleParams::default(),
        };
        let ds = paper_dataset_with(42, &cfg);
        let s = TrajectoryStats::of(&ds[0]);
        assert!((s.mean_interval_s - 5.0).abs() < 1.0, "interval {}", s.mean_interval_s);
    }
}
