//! Kinematic car model driven along a routed path.
//!
//! The simulator produces the *continuous* motion the paper's GPS
//! receivers observed discretely: a car accelerates toward the
//! class-dependent speed limit, brakes ahead of sharp turns and
//! junctions, occasionally stops (traffic lights, crossings), dwells, and
//! drives on. The motion is integrated at a fine tick and sampled at the
//! trajectory's reporting interval (the paper's example stream samples
//! every 10 seconds).

use rand::Rng;
use traj_geom::polyline::{point_at_length, polyline_length};
use traj_geom::Point2;
use traj_model::{Fix, ModelError, Timestamp, Trajectory};

use crate::network::{NodeId, RoadNetwork};

/// Driver/vehicle behaviour parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleParams {
    /// Acceleration, m/s².
    pub accel: f64,
    /// Comfortable braking deceleration, m/s².
    pub decel: f64,
    /// Maximum speed through a sharp (> ~35°) turn, m/s.
    pub turn_speed: f64,
    /// Probability of a full stop at an interior junction.
    pub stop_probability: f64,
    /// Stop dwell range, seconds (uniform).
    pub stop_duration: (f64, f64),
    /// Driver factor applied to speed limits (uniform range; one draw per
    /// trip).
    pub speed_factor: (f64, f64),
    /// Integration tick, seconds.
    pub tick: f64,
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams {
            accel: 1.6,
            decel: 2.2,
            turn_speed: 6.0,
            stop_probability: 0.32,
            stop_duration: (10.0, 70.0),
            speed_factor: (0.62, 1.02),
            tick: 0.5,
        }
    }
}

impl VehicleParams {
    fn validate(&self) {
        assert!(self.accel > 0.0 && self.decel > 0.0, "accel/decel must be positive");
        assert!(self.turn_speed > 0.0, "turn_speed must be positive");
        assert!(
            (0.0..=1.0).contains(&self.stop_probability),
            "stop_probability must be in [0, 1]"
        );
        assert!(
            self.stop_duration.0 >= 0.0 && self.stop_duration.0 <= self.stop_duration.1,
            "stop_duration range must be ordered and non-negative"
        );
        assert!(
            0.0 < self.speed_factor.0 && self.speed_factor.0 <= self.speed_factor.1,
            "speed_factor range must be ordered and positive"
        );
        assert!(self.tick > 0.0 && self.tick <= 5.0, "tick must be in (0, 5] s");
    }
}

/// A braking constraint: the car may pass arc position `at` no faster
/// than `cap` m/s; if `dwell > 0` it must also stop there for `dwell`
/// seconds.
#[derive(Debug, Clone, Copy)]
struct Constraint {
    at: f64,
    cap: f64,
    dwell: f64,
}

/// Drives `path` (a node sequence from [`crate::route::shortest_path`])
/// and samples the motion every `sample_interval` seconds starting at
/// `start_time`.
///
/// Returns the sampled trajectory (noise-free; see
/// [`crate::noise::GpsNoise`]).
///
/// # Errors
/// Returns an error only in the degenerate case where the produced series
/// is too short to form a trajectory (path of a single node).
///
/// # Panics
/// Panics on invalid parameters, a path that does not follow network
/// edges, or a simulation exceeding 12 hours (a parameterization bug).
pub fn drive_route<R: Rng>(
    net: &RoadNetwork,
    path: &[NodeId],
    params: &VehicleParams,
    sample_interval: f64,
    start_time: Timestamp,
    rng: &mut R,
) -> Result<Trajectory, ModelError> {
    params.validate();
    assert!(
        sample_interval > 0.0 && sample_interval.is_finite(),
        "sample_interval must be positive"
    );
    if path.len() < 2 {
        return Err(ModelError::TooShort { required: 2, actual: path.len() });
    }

    // Way-point geometry.
    let points: Vec<Point2> = path.iter().map(|&n| net.position(n)).collect();
    let mut cum = Vec::with_capacity(points.len());
    let mut acc = 0.0;
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            acc += points[i - 1].distance(*p);
        }
        cum.push(acc);
    }
    let total = polyline_length(&points);

    // Per-trip driver factor and per-edge target speeds.
    let factor = rng.gen_range(params.speed_factor.0..=params.speed_factor.1);
    let edge_target: Vec<f64> = path
        .windows(2)
        .map(|w| {
            // lint: allow(panic) paths come from shortest_path over this
            // network; a missing edge is a router bug
            let e = net
                .edge_between(w[0], w[1])
                .expect("path must follow network edges"); // lint: allow(panic) router invariant, see above
            e.class.speed_limit() * factor
        })
        .collect();

    // Constraints at interior way-points: turn slow-down and random
    // stops; final constraint is a full stop at the destination.
    let mut constraints: Vec<Constraint> = Vec::with_capacity(points.len());
    for j in 1..points.len() - 1 {
        let inbound = points[j] - points[j - 1];
        let outbound = points[j + 1] - points[j];
        let angle = inbound.angle() - outbound.angle();
        let angle = angle.abs().min(std::f64::consts::TAU - angle.abs());
        let sharp = angle > 0.6; // ≈ 35°
        let stop_here = rng.gen_bool(params.stop_probability);
        let dwell = if stop_here {
            rng.gen_range(params.stop_duration.0..=params.stop_duration.1)
        } else {
            0.0
        };
        let cap = if stop_here {
            0.0
        } else if sharp {
            params.turn_speed
        } else {
            edge_target[j].min(edge_target[j - 1])
        };
        if stop_here || sharp {
            constraints.push(Constraint { at: cum[j], cap, dwell });
        }
    }
    constraints.push(Constraint { at: total, cap: 0.0, dwell: 0.0 });

    // Integration state.
    let mut t = 0.0f64; // relative seconds
    let mut s = 0.0f64; // arc position
    let mut v = 0.0f64;
    let mut next_constraint = 0usize;
    let mut edge = 0usize;

    // Sampling state.
    let mut samples: Vec<Fix> = Vec::new();
    let mut next_sample = 0.0f64;
    let mut prev_state = (0.0f64, 0.0f64); // (t, s)
    // lint: allow(panic) the path has >= 2 nodes so points is non-empty
    let pos_at = |s: f64| point_at_length(&points, s).expect("non-empty polyline");
    let emit_until = |t_new: f64, s_new: f64, prev: (f64, f64), next_sample: &mut f64, samples: &mut Vec<Fix>| {
        while *next_sample <= t_new {
            let f = if t_new > prev.0 {
                (*next_sample - prev.0) / (t_new - prev.0)
            } else {
                1.0
            };
            let s_sample = prev.1 + (s_new - prev.1) * f;
            samples.push(Fix::new(
                start_time + traj_model::TimeDelta::from_secs(*next_sample),
                pos_at(s_sample),
            ));
            *next_sample += sample_interval;
        }
    };

    const MAX_SIM_SECS: f64 = 12.0 * 3600.0;
    while s < total {
        assert!(t < MAX_SIM_SECS, "simulation exceeded 12 h — parameterization bug");
        // Skip constraints already passed.
        while next_constraint < constraints.len() && constraints[next_constraint].at < s - 1e-9 {
            next_constraint += 1;
        }
        // Current edge target speed.
        while edge + 1 < cum.len() - 1 && cum[edge + 1] <= s {
            edge += 1;
        }
        let target = edge_target[edge.min(edge_target.len() - 1)];
        // Braking envelope over upcoming constraints.
        let mut envelope = f64::INFINITY;
        for c in &constraints[next_constraint..] {
            let d = (c.at - s).max(0.0);
            let allowed = (c.cap * c.cap + 2.0 * params.decel * d).sqrt();
            envelope = envelope.min(allowed);
            if allowed >= target {
                break; // farther constraints cannot bind more tightly yet
            }
        }
        let v_des = target.min(envelope);
        if v < v_des {
            v = (v + params.accel * params.tick).min(v_des);
        } else {
            v = (v - params.decel * params.tick).max(v_des.min(v));
        }

        // Stop handling: a full-stop constraint must never be overshot by
        // the discrete tick — if this tick would reach or cross it, the
        // car arrives there exactly and dwells.
        let c = constraints[next_constraint.min(constraints.len() - 1)];
        if traj_geom::numeric::approx_zero(c.cap, 0.0) && s + v * params.tick >= c.at - 0.05 {
            let dist = (c.at - s).max(0.0);
            let dt = if v > 0.5 { (dist / v).min(params.tick * 4.0) } else { params.tick };
            let t_new = t + dt.max(1e-3);
            emit_until(t_new, c.at, prev_state, &mut next_sample, &mut samples);
            t = t_new;
            s = c.at;
            v = 0.0;
            prev_state = (t, s);
            if c.dwell > 0.0 {
                let t_new = t + c.dwell;
                emit_until(t_new, s, prev_state, &mut next_sample, &mut samples);
                t = t_new;
                prev_state = (t, s);
            }
            next_constraint += 1;
            if s >= total {
                break;
            }
            continue;
        }

        let t_new = t + params.tick;
        let s_new = (s + v * params.tick).min(total);
        emit_until(t_new, s_new, prev_state, &mut next_sample, &mut samples);
        t = t_new;
        s = s_new;
        prev_state = (t, s);
    }

    // Final fix at arrival, if the sampler has not just emitted there.
    let arrival = Fix::new(start_time + traj_model::TimeDelta::from_secs(t), pos_at(total));
    match samples.last() {
        Some(last) if (arrival.t - last.t).as_secs() > 1e-6 => samples.push(arrival),
        None => samples.push(arrival),
        _ => {}
    }
    Trajectory::new(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::shortest_path;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traj_model::stats::TrajectoryStats;

    fn setup() -> (RoadNetwork, Vec<NodeId>) {
        let mut rng = StdRng::seed_from_u64(21);
        let net = RoadNetwork::grid(12, 12, 500.0, 30.0, 4, &mut rng);
        let path = shortest_path(&net, 0, 143).unwrap();
        (net, path)
    }

    #[test]
    fn produces_valid_sampled_trajectory() {
        let (net, path) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let t = drive_route(&net, &path, &VehicleParams::default(), 10.0, Timestamp::EPOCH, &mut rng)
            .unwrap();
        assert!(t.len() > 10, "got {} fixes", t.len());
        // Samples are on the 10 s grid except possibly the final fix.
        for f in &t.fixes()[..t.len() - 1] {
            let sec = f.t.as_secs();
            assert!((sec / 10.0 - (sec / 10.0).round()).abs() < 1e-9, "off-grid at {sec}");
        }
    }

    #[test]
    fn starts_at_origin_ends_at_destination() {
        let (net, path) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let t = drive_route(&net, &path, &VehicleParams::default(), 10.0, Timestamp::EPOCH, &mut rng)
            .unwrap();
        assert!(t.first().pos.distance(net.position(path[0])) < 1.0);
        assert!(t.last().pos.distance(net.position(*path.last().unwrap())) < 1.0);
    }

    #[test]
    fn speeds_respect_physical_bounds() {
        let (net, path) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let params = VehicleParams::default();
        let t = drive_route(&net, &path, &params, 10.0, Timestamp::EPOCH, &mut rng).unwrap();
        let s = TrajectoryStats::of(&t);
        let vmax = crate::network::RoadClass::Rural.speed_limit() * params.speed_factor.1;
        assert!(s.max_speed_ms <= vmax + 0.5, "max {} vs limit {}", s.max_speed_ms, vmax);
        assert!(s.avg_speed_ms > 3.0, "unreasonably slow: {} m/s", s.avg_speed_ms);
    }

    #[test]
    fn trip_time_exceeds_free_flow_time() {
        let (net, path) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let t = drive_route(&net, &path, &VehicleParams::default(), 10.0, Timestamp::EPOCH, &mut rng)
            .unwrap();
        let free_flow = crate::route::path_travel_time(&net, &path);
        assert!(
            t.duration().as_secs() >= free_flow * 0.9,
            "duration {} vs free-flow {}",
            t.duration().as_secs(),
            free_flow
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, path) = setup();
        let a = drive_route(
            &net,
            &path,
            &VehicleParams::default(),
            10.0,
            Timestamp::EPOCH,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        let b = drive_route(
            &net,
            &path,
            &VehicleParams::default(),
            10.0,
            Timestamp::EPOCH,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stops_create_dwell_periods() {
        let (net, path) = setup();
        // Force a stop at every junction with long dwell.
        let params = VehicleParams {
            stop_probability: 1.0,
            stop_duration: (30.0, 30.0),
            ..VehicleParams::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let t = drive_route(&net, &path, &params, 10.0, Timestamp::EPOCH, &mut rng).unwrap();
        // Some consecutive samples must be (nearly) stationary.
        let stationary = t
            .segments()
            .filter(|(a, b)| a.pos.distance(b.pos) < 1.0)
            .count();
        assert!(stationary > 3, "expected dwells, found {stationary}");
    }

    #[test]
    fn single_node_path_is_an_error() {
        let (net, _) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let r = drive_route(&net, &[0], &VehicleParams::default(), 10.0, Timestamp::EPOCH, &mut rng);
        assert!(matches!(r, Err(ModelError::TooShort { .. })));
    }

    #[test]
    fn custom_start_time_offsets_all_fixes() {
        let (net, path) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let t0 = Timestamp::from_secs(5000.0);
        let t = drive_route(&net, &path, &VehicleParams::default(), 10.0, t0, &mut rng).unwrap();
        assert!(t.start_time() >= t0);
    }
}
