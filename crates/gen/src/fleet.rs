//! Closed-form fleet synthesis for ingest load generation.
//!
//! The road-network simulator ([`crate::dataset`]) is faithful but far
//! too expensive to materialize 100k–1M movers for a throughput bench —
//! and a load generator must not allocate per-mover state, or the
//! *generator* becomes the bottleneck it is trying to measure. This
//! module instead derives every mover's whole path from a hash of its
//! id: [`Fleet::fix_for`] is O(1), allocation-free, and deterministic,
//! so an open-loop arrival schedule can synthesize the `k`-th fix of
//! mover `m` on demand, in any order, on any thread, with no shared
//! state.
//!
//! The motion model is a drifting heading with a lateral oscillation —
//! smooth car-like kinematics (bounded speed, bounded turn rate) that
//! give the online compressors realistic geometry to work on, without
//! routing.

use traj_model::{Fix, Trajectory};

/// SplitMix64: the standard 64-bit finalizer-style mixer. Good
/// avalanche behaviour, `const`, and allocation-free — exactly what
/// per-mover parameter derivation and shard routing need.
pub const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps 64 hash bits onto `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    // 53 mantissa bits; the shift keeps the distribution uniform.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Configuration of a synthetic [`Fleet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of movers (ids `0..movers`).
    pub movers: u64,
    /// Seed mixed into every mover's parameters.
    pub seed: u64,
    /// Seconds between consecutive fixes of one mover (the paper's GPS
    /// report interval; 10 s in its Table 2 workloads).
    pub report_dt: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { movers: 1_000, seed: 42, report_dt: 10.0 }
    }
}

/// A deterministic fleet of movers whose fixes are computed on demand.
///
/// ```
/// use traj_gen::fleet::{Fleet, FleetConfig};
///
/// let fleet = Fleet::new(FleetConfig { movers: 100_000, ..FleetConfig::default() });
/// let a = fleet.fix_for(77, 0);
/// let b = fleet.fix_for(77, 1);
/// assert!(b.t > a.t); // per-mover times are strictly monotone
/// assert_eq!(fleet.fix_for(77, 0), a); // and fully deterministic
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fleet {
    cfg: FleetConfig,
}

impl Fleet {
    /// Creates a fleet; `movers` is clamped to at least 1 and
    /// non-finite or non-positive `report_dt` falls back to the
    /// default 10 s (the generator must never emit invalid fixes).
    pub fn new(cfg: FleetConfig) -> Self {
        let mut cfg = cfg;
        cfg.movers = cfg.movers.max(1);
        if !(cfg.report_dt.is_finite() && cfg.report_dt > 0.0) {
            cfg.report_dt = 10.0;
        }
        Fleet { cfg }
    }

    /// The configuration this fleet was built with.
    pub fn config(&self) -> FleetConfig {
        self.cfg
    }

    /// Number of movers in the fleet.
    pub fn movers(&self) -> u64 {
        self.cfg.movers
    }

    /// The `k`-th fix of `mover` — O(1) closed form, no allocation, no
    /// per-mover state. Times are strictly monotone in `k` for a fixed
    /// mover; positions follow a smooth drifting-heading path with
    /// bounded speed (roughly 5–33 m/s, car-like).
    pub fn fix_for(&self, mover: u64, k: u64) -> Fix {
        let m = mover % self.cfg.movers;
        let h1 = splitmix64(self.cfg.seed ^ m.wrapping_mul(0xA24B_AED4_963E_E407));
        let h2 = splitmix64(h1);
        let h3 = splitmix64(h2);
        let h4 = splitmix64(h3);
        // Start positions spread over a ~200 km square so movers do not
        // pile onto one spot; headings and speeds per mover.
        let x0 = unit(h1) * 200_000.0;
        let y0 = unit(h2) * 200_000.0;
        let heading = unit(h3) * std::f64::consts::TAU;
        let speed = 5.0 + unit(h4) * 25.0; // m/s along the drift axis
        let wobble_amp = 30.0 + unit(splitmix64(h4)) * 300.0; // metres
        let wobble_freq = 0.002 + unit(splitmix64(h1 ^ h3)) * 0.01; // rad/s
        let phase = unit(splitmix64(h2 ^ h4)) * std::f64::consts::TAU;

        let t = k as f64 * self.cfg.report_dt;
        let along = speed * t;
        let swing = (wobble_freq * t + phase).sin() * wobble_amp;
        let (sin_h, cos_h) = heading.sin_cos();
        // Drift along the heading, oscillate across it.
        let x = x0 + along * cos_h - swing * sin_h;
        let y = y0 + along * sin_h + swing * cos_h;
        Fix::from_parts(t, x, y)
    }

    /// Materializes the first `n` fixes of `mover` as a [`Trajectory`]
    /// (test/debug helper; the hot path is [`Fleet::fix_for`]).
    ///
    /// # Panics
    /// Panics for `n < 1`.
    pub fn trajectory(&self, mover: u64, n: usize) -> Trajectory {
        assert!(n >= 1, "need at least one fix");
        Trajectory::new((0..n as u64).map(|k| self.fix_for(mover, k)).collect())
            // lint: allow(panic) fix_for times are k * report_dt with
            // report_dt > 0 enforced in new(), strictly increasing
            .expect("strictly increasing times by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixes_are_deterministic_and_monotone() {
        let fleet = Fleet::new(FleetConfig { movers: 1_000_000, ..FleetConfig::default() });
        for mover in [0u64, 1, 999_999, 123_456] {
            let mut last = None;
            for k in 0..50 {
                let f = fleet.fix_for(mover, k);
                assert!(f.is_finite(), "mover {mover} k {k}");
                assert_eq!(f, fleet.fix_for(mover, k), "determinism");
                if let Some(prev) = last {
                    assert!(f.t > prev, "mover {mover} k {k}: time not monotone");
                }
                last = Some(f.t);
            }
        }
    }

    #[test]
    fn movers_differ_and_speeds_are_bounded() {
        let fleet = Fleet::new(FleetConfig::default());
        let a = fleet.trajectory(1, 100);
        let b = fleet.trajectory(2, 100);
        assert_ne!(a.fixes()[0].pos, b.fixes()[0].pos, "distinct start positions");
        for w in a.fixes().windows(2) {
            let v = w[0].speed_to(&w[1]).unwrap();
            assert!(v < 60.0, "implausible speed {v} m/s");
        }
    }

    #[test]
    fn config_is_sanitized() {
        let fleet = Fleet::new(FleetConfig { movers: 0, seed: 1, report_dt: f64::NAN });
        assert_eq!(fleet.movers(), 1);
        assert!(fleet.fix_for(5, 3).is_finite());
        assert_eq!(fleet.config().report_dt, 10.0);
    }
}
