//! Cross-crate integration tests over the umbrella API: generate →
//! compress → evaluate → store → query, the full pipeline a downstream
//! user runs.

use trajc::compress::error::{average_synchronous_error, sed_at_samples};
use trajc::compress::{evaluate, Compressor, DouglasPeucker, OpeningWindow, TdSp, TdTr};
use trajc::geom::Point2;
use trajc::model::stats::TrajectoryStats;
use trajc::model::{io, Timestamp};
use trajc::store::{position_of, GridIndex, IngestMode, MovingObjectStore, QueryWindow};

#[test]
fn generate_compress_evaluate_every_algorithm() {
    let dataset = trajc::gen::paper_dataset(42);
    let algorithms: Vec<Box<dyn Compressor>> = vec![
        Box::new(DouglasPeucker::new(30.0)),
        Box::new(TdTr::new(30.0)),
        Box::new(TdSp::new(30.0, 5.0)),
        Box::new(OpeningWindow::nopw(30.0)),
        Box::new(OpeningWindow::bopw(30.0)),
        Box::new(OpeningWindow::opw_tr(30.0)),
        Box::new(OpeningWindow::opw_sp(30.0, 5.0)),
    ];
    for trip in &dataset {
        for algo in &algorithms {
            let result = algo.compress(trip);
            let e = evaluate(trip, &result);
            assert!(
                e.compression_pct > 0.0 && e.compression_pct < 100.0,
                "{}: compression {}",
                algo.name(),
                e.compression_pct
            );
            assert!(e.avg_sync_err_m.is_finite() && e.avg_sync_err_m >= 0.0);
            assert!(e.avg_sync_err_m <= e.max_sync_err_m + 1e-9);
        }
    }
}

#[test]
fn time_ratio_algorithms_bound_sample_error_by_threshold() {
    let dataset = trajc::gen::paper_dataset(42);
    let eps = 40.0;
    for trip in &dataset {
        for algo in [
            Box::new(TdTr::new(eps)) as Box<dyn Compressor>,
            Box::new(OpeningWindow::opw_tr(eps)),
            Box::new(OpeningWindow::opw_sp(eps, 5.0)),
        ] {
            let approx = algo.compress(trip).apply(trip);
            let (_, max_sed) = sed_at_samples(trip, &approx);
            assert!(
                max_sed <= eps + 1e-6,
                "{}: max sample SED {} over budget {}",
                algo.name(),
                max_sed,
                eps
            );
        }
    }
}

#[test]
fn csv_roundtrip_preserves_compression_behaviour() {
    let trip = trajc::gen::paper_dataset(42).remove(2);
    let text = io::to_csv_string(&trip);
    let back = io::from_csv_str(&text).expect("roundtrip parses");
    let a = TdTr::new(30.0).compress(&trip);
    let b = TdTr::new(30.0).compress(&back);
    assert_eq!(a.kept(), b.kept(), "compression must be identical after I/O roundtrip");
}

#[test]
fn store_pipeline_keeps_queries_within_budget() {
    let dataset = trajc::gen::paper_dataset(42);
    let eps = 30.0;
    let mut store = MovingObjectStore::new(IngestMode::Compressed {
        epsilon: eps,
        speed_epsilon: None,
        max_window: 256,
    });
    for (id, trip) in dataset.iter().enumerate() {
        store.insert_trajectory(id as u64, trip).expect("valid trip");
    }
    // Position queries at every original sample instant stay within the
    // budget of the raw position.
    for (id, trip) in dataset.iter().enumerate() {
        for fix in trip.fixes() {
            let p = position_of(&store, id as u64, fix.t).expect("covered instant");
            assert!(
                p.distance(fix.pos) <= eps + 1e-6,
                "object {id}: query error {} m",
                p.distance(fix.pos)
            );
        }
    }
    // Meaningful compression happened.
    assert!(store.stats().compression_pct() > 20.0);
}

#[test]
fn window_queries_agree_between_index_and_scan_on_real_workload() {
    let dataset = trajc::gen::paper_dataset(42);
    let mut store = MovingObjectStore::new(IngestMode::Raw);
    for (id, trip) in dataset.iter().enumerate() {
        store.insert_trajectory(id as u64, trip).expect("valid trip");
    }
    let index = GridIndex::build(&store, 800.0, 300.0);
    for i in 0..20 {
        let x = (i % 5) as f64 * 4_000.0;
        let y = (i / 5) as f64 * 4_500.0;
        let w = QueryWindow::new(
            Point2::new(x, y),
            Point2::new(x + 5_000.0, y + 5_000.0),
            (i as f64) * 100.0,
            (i as f64) * 100.0 + 800.0,
        );
        assert_eq!(
            index.objects_in_window(&w),
            trajc::store::objects_in_window(&store, &w),
            "window {i}"
        );
    }
}

#[test]
fn compressed_history_error_is_far_below_naive_subsampling() {
    // The pitch of the paper in one test: at the same storage budget,
    // TD-TR beats keep-every-ith-point by a wide error margin.
    let trip = trajc::gen::paper_dataset(42).remove(6);
    let tdtr = TdTr::new(50.0).compress(&trip);
    let kept = tdtr.kept_len();
    // Uniform sampling with the same number of kept points.
    let step = trip.len().div_ceil(kept);
    let uniform = trajc::compress::UniformSample::new(step.max(2)).compress(&trip);
    let e_tdtr = average_synchronous_error(&trip, &tdtr.apply(&trip));
    let e_unif = average_synchronous_error(&trip, &uniform.apply(&trip));
    assert!(
        uniform.kept_len() <= kept + 2,
        "comparable budgets: uniform {} vs tdtr {}",
        uniform.kept_len(),
        kept
    );
    assert!(
        e_tdtr < e_unif,
        "TD-TR error {e_tdtr} must beat uniform sampling {e_unif} at equal budget"
    );
}

#[test]
fn trajectory_statistics_survive_compression_roughly() {
    // Length shrinks (chords), duration and endpoints are exact.
    let trip = trajc::gen::paper_dataset(42).remove(0);
    let approx = TdTr::new(30.0).compress(&trip).apply(&trip);
    let s0 = TrajectoryStats::of(&trip);
    let s1 = TrajectoryStats::of(&approx);
    assert_eq!(s0.duration, s1.duration);
    assert!((s0.displacement_m - s1.displacement_m).abs() < 1e-6);
    assert!(s1.length_m <= s0.length_m + 1e-6);
    assert!(s1.length_m >= 0.8 * s0.length_m, "length collapsed: {} → {}", s0.length_m, s1.length_m);
}

#[test]
fn umbrella_reexports_are_coherent() {
    // The same types are reachable through the umbrella and subcrates.
    let t = Timestamp::from_secs(5.0);
    assert_eq!(t.as_secs(), 5.0);
    let p = trajc::geom::Point2::new(1.0, 2.0);
    assert_eq!(p.distance(Point2::new(1.0, 2.0)), 0.0);
}
