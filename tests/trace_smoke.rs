//! Smoke test for the tracing CLI surface, driving the real `trajc`
//! binary: `compress --trace-out` must produce a Chrome Trace Event
//! JSON file (Perfetto-loadable) or folded flamegraph stacks, and
//! `obs merge` must round-trip metrics sidecars into one table.
//!
//! The structural assertions are feature-aware: a no-default-features
//! build writes empty-but-valid exports.

use std::path::Path;
use std::process::Command;

use trajc::obs::json::{self, Json};

fn trajc(args: &[&str], extra: &[&Path]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_trajc"));
    cmd.args(args);
    for p in extra {
        cmd.arg(p);
    }
    cmd.output().expect("trajc must run")
}

fn generate_input(dir: &Path) -> std::path::PathBuf {
    let input = dir.join("in.csv");
    let out = trajc(
        &["generate", "--seed", "42", "--trip", "1", "-o"],
        &[&input],
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    input
}

#[test]
fn compress_trace_out_writes_chrome_trace_json() {
    let dir = std::env::temp_dir().join("trajc_trace_smoke_json");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let input = generate_input(&dir);
    let trace = dir.join("trace.json");

    let out = trajc(
        &["compress"],
        &[&input],
    );
    // Missing flags fail cleanly (sanity that the harness works).
    assert!(!out.status.success());

    let out = Command::new(env!("CARGO_BIN_EXE_trajc"))
        .arg("compress")
        .arg(&input)
        .args(["--algo", "td-tr", "--eps", "30", "--trace-out"])
        .arg(&trace)
        .output()
        .expect("trajc must run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let body = std::fs::read_to_string(&trace).expect("trace written");
    let doc = json::parse(&body).expect("trace must parse as JSON");
    let events = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents");
    assert!(doc.get("otherData").is_some(), "dropped-event counter present");
    if cfg!(feature = "obs") {
        assert!(!events.is_empty(), "instrumented build records events");
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(Json::as_str) == Some("cli.compress")
                    && e.get("ph").and_then(Json::as_str) == Some("B")
            }),
            "cli.compress span present"
        );
    } else {
        // Only process/thread metadata survives — no recorded events.
        assert!(
            events
                .iter()
                .all(|e| e.get("ph").and_then(Json::as_str) == Some("M")),
            "no-op build records nothing"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compress_trace_out_writes_folded_stacks() {
    let dir = std::env::temp_dir().join("trajc_trace_smoke_folded");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let input = generate_input(&dir);
    let trace = dir.join("trace.folded");

    let out = Command::new(env!("CARGO_BIN_EXE_trajc"))
        .arg("compress")
        .arg(&input)
        .args(["--algo", "ndp", "--eps", "30", "--trace-out"])
        .arg(&trace)
        .output()
        .expect("trajc must run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let body = std::fs::read_to_string(&trace).expect("folded written");
    for line in body.lines() {
        let (stack, self_ns) = line.rsplit_once(' ').expect("stack and self time");
        assert!(!stack.is_empty());
        self_ns.parse::<u64>().expect("integral self-time ns");
    }
    if cfg!(feature = "obs") {
        assert!(body.lines().any(|l| l.contains("cli.compress")), "{body}");
    } else {
        assert!(body.trim().is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_merge_round_trips_metrics_sidecars() {
    let dir = std::env::temp_dir().join("trajc_trace_smoke_merge");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let input = generate_input(&dir);
    let json_sidecar = dir.join("run1.json");
    let csv_sidecar = dir.join("run2.csv");

    for (path, fmt) in [(&json_sidecar, "json"), (&csv_sidecar, "csv")] {
        let out = Command::new(env!("CARGO_BIN_EXE_trajc"))
            .arg("compress")
            .arg(&input)
            .args(["--algo", "td-tr", "--eps", "30", "--metrics-format", fmt, "--metrics-out"])
            .arg(path)
            .output()
            .expect("trajc must run");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }

    let merged = dir.join("merged.csv");
    let out = Command::new(env!("CARGO_BIN_EXE_trajc"))
        .args(["obs", "merge"])
        .arg(&json_sidecar)
        .arg(&csv_sidecar)
        .arg("-o")
        .arg(&merged)
        .output()
        .expect("trajc must run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("metric,kind,stat,run1.json,run2.csv"), "{stdout}");
    let body = std::fs::read_to_string(&merged).expect("merged CSV written");
    assert!(body.starts_with("metric,kind,stat,run1.json,run2.csv"));
    if cfg!(feature = "obs") {
        // Identical runs: both columns populated for the shared counter.
        let row = body
            .lines()
            .find(|l| l.starts_with("compress.points_in"))
            .expect("points_in row");
        let cells: Vec<&str> = row.split(',').collect();
        assert_eq!(cells.len(), 5, "{row}");
        assert_eq!(cells[3], cells[4], "same input ⇒ same counts: {row}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
