//! Error-path tests that drive the real `trajc` binary.
//!
//! The compiled binary (not the library) is what users see, so these
//! tests assert on its exit status and stderr: corrupt input must name
//! the offending file and line, and never panic.

use std::path::PathBuf;
use std::process::{Command, Output};

fn trajc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trajc"))
        .args(args)
        .output()
        .expect("spawn trajc binary")
}

fn tmp_file(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("trajc_cli_error_tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write temp file");
    path
}

#[test]
fn corrupt_csv_reports_path_and_line() {
    let path = tmp_file("corrupt.csv", "t,x,y\n0,0,0\n5,oops,0\n10,3,4\n");
    let out = trajc(&["info", path.to_str().expect("utf-8 temp path")]);
    assert!(!out.status.success(), "corrupt input must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("corrupt.csv"),
        "stderr must name the file: {stderr}"
    );
    assert!(
        stderr.contains("line 3"),
        "stderr must name the offending line: {stderr}"
    );
}

#[test]
fn non_monotone_timestamps_fail_with_context() {
    let path = tmp_file("backwards.csv", "t,x,y\n10,0,0\n5,1,1\n");
    let out = trajc(&["info", path.to_str().expect("utf-8 temp path")]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("backwards.csv"), "stderr: {stderr}");
}

#[test]
fn missing_file_reports_the_path() {
    let out = trajc(&["info", "/definitely/not/here.csv"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("/definitely/not/here.csv"), "stderr: {stderr}");
}

#[test]
fn compress_surfaces_parse_errors_from_either_input() {
    let path = tmp_file("short.csv", "t,x,y\n0,0,0\n");
    let out = trajc(&[
        "compress",
        path.to_str().expect("utf-8 temp path"),
        "--algo",
        "td-tr",
        "--eps",
        "50",
    ]);
    assert!(!out.status.success(), "a 1-fix input cannot be compressed");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("short.csv"), "stderr: {stderr}");
}

#[test]
fn store_recover_rejects_a_non_directory_with_its_path() {
    let path = tmp_file("not_a_dir.csv", "t,x,y\n0,0,0\n");
    let out = trajc(&["store", "recover", path.to_str().expect("utf-8 temp path")]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not_a_dir.csv"), "stderr: {stderr}");
    assert!(stderr.contains("not a directory"), "stderr: {stderr}");
}

#[test]
fn unknown_algorithm_is_a_clean_error_not_a_panic() {
    let path = tmp_file("ok.csv", "t,x,y\n0,0,0\n10,5,5\n20,9,9\n");
    let out = trajc(&[
        "compress",
        path.to_str().expect("utf-8 temp path"),
        "--algo",
        "warp-drive",
        "--eps",
        "50",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warp-drive"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
}
