//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition API this workspace's `benches/`
//! use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `criterion_group!`/`criterion_main!`)
//! with a simple wall-clock harness: per benchmark it warms up briefly,
//! then times batches and reports the best/median/mean time per
//! iteration.
//!
//! Run modes, matching cargo's conventions:
//! - `cargo bench` (cargo passes `--bench`): full measurement.
//! - `cargo test` (no `--bench` flag, or `--test`): smoke mode — each
//!   benchmark body runs exactly once so the target doubles as a test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the measurement loop should run.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    /// Real timing run (`cargo bench`).
    Measure,
    /// Run every body once, report nothing (`cargo test`).
    Smoke,
}

fn detect_mode() -> Mode {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test") {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: detect_mode(), sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if self.mode == Mode::Measure {
            println!("\n{name}");
        }
        BenchmarkGroup { criterion: self, name, sample_size: None, throughput: None }
    }

    /// Registers a stand-alone benchmark (same as a one-entry group).
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut g = self.benchmark_group(id.clone());
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Throughput annotation; used to derive elements/sec in reports.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple. Rarely used; same reporting as `Bytes`.
    BytesDecimal(u64),
}

/// A `name/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{function_name}/{parameter}") }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { full: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// A named set of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.full, &mut |b| f(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.full, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; drop would do).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        match self.criterion.mode {
            Mode::Smoke => {
                let mut b = Bencher { mode: Mode::Smoke, samples: Vec::new(), sample_size: 1 };
                f(&mut b);
            }
            Mode::Measure => {
                let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
                let mut b = Bencher {
                    mode: Mode::Measure,
                    samples: Vec::new(),
                    sample_size,
                };
                f(&mut b);
                report(&self.name, id, &b.samples, self.throughput);
            }
        }
    }
}

/// Per-iteration timings (seconds), one entry per timed sample.
fn report(group: &str, id: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let best = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / median),
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            format!("  {:>12.0} B/s", n as f64 / median)
        }
        None => String::new(),
    };
    println!(
        "  {group}/{id:<40} best {:>10}  median {:>10}  mean {:>10}{rate}",
        fmt_time(best),
        fmt_time(median),
        fmt_time(mean),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Times closures handed to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.mode == Mode::Smoke {
            black_box(f());
            return;
        }
        // Warm up and size the batch so one sample spans ≥ ~1 ms.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / one.as_nanos()).clamp(1, 10_000) as u32;

        let deadline = Instant::now() + Duration::from_millis(250);
        self.samples.clear();
        for done in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
            // Keep heavyweight benches bounded: stop sampling after the
            // time budget once we have a few samples.
            if done >= 2 && Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Declares a group of benchmark functions, each `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
