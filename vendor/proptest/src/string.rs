//! String strategies from a regex-like pattern.
//!
//! `&str` implements [`Strategy`]`<Value = String>` for the pattern
//! subset the workspace uses: literal characters, `.`/`\PC` (printable),
//! character classes like `[-0-9a-zA-Z\.]` (with ranges and escapes),
//! and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// One pattern atom plus its repetition bounds.
#[derive(Clone, Debug)]
struct Atom {
    set: CharSet,
    lo: usize,
    hi: usize,
}

#[derive(Clone, Debug)]
enum CharSet {
    /// Any printable (non-control) character — `.` and `\PC`.
    Printable,
    /// An explicit class: inclusive char ranges.
    Ranges(Vec<(char, char)>),
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Printable => {
                // Mostly ASCII, occasionally wider unicode, never control.
                if rng.gen_bool(0.85) {
                    rng.gen_range(0x20u32..=0x7E) as u8 as char
                } else {
                    char::from_u32(rng.gen_range(0xA1u32..=0x2FF)).unwrap_or('¿')
                }
            }
            CharSet::Ranges(ranges) => {
                let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
                let mut k = rng.gen_range(0u32..total);
                for &(a, b) in ranges {
                    let span = b as u32 - a as u32 + 1;
                    if k < span {
                        return char::from_u32(a as u32 + k).expect("valid class range");
                    }
                    k -= span;
                }
                unreachable!("index within total span")
            }
        }
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::Printable
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                i += 1;
                match c {
                    // \PC — "not a control character".
                    'P' if chars.get(i) == Some(&'C') => {
                        i += 1;
                        CharSet::Printable
                    }
                    'd' => CharSet::Ranges(vec![('0', '9')]),
                    'w' => CharSet::Ranges(vec![('0', '9'), ('A', 'Z'), ('a', 'z'), ('_', '_')]),
                    's' => CharSet::Ranges(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
                    other => CharSet::Ranges(vec![(other, other)]),
                }
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // `a-z` range (a lone `-` at either end is literal).
                    if chars.get(i + 1) == Some(&'-')
                        && i + 2 < chars.len()
                        && chars[i + 2] != ']'
                    {
                        let end = chars[i + 2];
                        assert!(c <= end, "inverted class range in {pattern:?}");
                        ranges.push((c, end));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                }
                assert!(chars.get(i) == Some(&']'), "unterminated class in {pattern:?}");
                i += 1;
                CharSet::Ranges(ranges)
            }
            c => {
                i += 1;
                CharSet::Ranges(vec![(c, c)])
            }
        };

        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    None => {
                        let n = body.parse().expect("count quantifier");
                        (n, n)
                    }
                    Some((lo, "")) => (lo.parse().expect("lower bound"), 16),
                    Some((lo, hi)) => (
                        lo.parse().expect("lower bound"),
                        hi.parse().expect("upper bound"),
                    ),
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { set, lo, hi });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(self) {
            let n = rng.gen_range(atom.lo..=atom.hi);
            for _ in 0..n {
                out.push(atom.set.sample(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn printable_pattern_generates_no_controls() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "\\PC{0,256}".generate(&mut rng);
            assert!(s.chars().count() <= 256);
            assert!(!s.chars().any(|c| c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn class_pattern_respects_alphabet() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = "[-0-9a-zA-Z\\.]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(
                s.chars().all(|c| c == '-' || c == '.' || c.is_ascii_alphanumeric()),
                "{s:?}"
            );
        }
    }

    #[test]
    fn exact_count_quantifier() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = "a{3}b?".generate(&mut rng);
        assert!(s.starts_with("aaa") && s.len() <= 4);
    }
}
