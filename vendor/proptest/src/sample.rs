//! Sampling helpers (`prop::sample::Index`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length-agnostic index: generated once, projectable into any
/// non-empty collection via [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Index(f64);

impl Index {
    /// Projects this index into a collection of length `len`.
    ///
    /// Panics if `len == 0`, like upstream proptest.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        ((self.0 * len as f64) as usize).min(len - 1)
    }
}

/// Strategy behind `any::<Index>()`.
#[derive(Clone, Copy, Debug)]
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;
    fn generate(&self, rng: &mut TestRng) -> Index {
        Index(rng.gen_range(0.0..1.0))
    }
}
