//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest 1.x this workspace uses — the
//! [`proptest!`] macro family, [`strategy::Strategy`] with ranges,
//! tuples, `prop_map`, collection/vec, string-regex strategies,
//! `any::<prop::sample::Index>()` and `bool::ANY` — backed by a
//! deterministic per-test RNG. Failing cases report their inputs;
//! there is **no shrinking**.

pub mod strategy;

pub mod collection;

pub mod sample;

pub mod string;

pub mod test_runner;

/// Strategies for `bool` (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;

    /// Types with a canonical default strategy.
    pub trait Arbitrary: Sized {
        /// The default strategy for this type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the default strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Returns the canonical strategy for `A` (`any::<A>()`).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    impl Arbitrary for bool {
        type Strategy = crate::bool::Any;
        fn arbitrary() -> Self::Strategy {
            crate::bool::ANY
        }
    }

    impl Arbitrary for crate::sample::Index {
        type Strategy = crate::sample::IndexStrategy;
        fn arbitrary() -> Self::Strategy {
            crate::sample::IndexStrategy
        }
    }
}

/// The glob-import surface used by the tests:
/// `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    /// Alias so `prop::sample::Index` etc. resolve after a glob import.
    pub use crate as prop;
}

/// Runs each `fn name(arg in strategy, ...) { body }` item as a
/// `#[test]` over many generated cases.
///
/// Accepts an optional `#![proptest_config(expr)]` header. Bodies may
/// use [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
/// [`prop_assume!`].
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::execute(&__pt_config, stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                    let __pt_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let __pt_case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    (__pt_case(), __pt_inputs)
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ::std::default::Default::default(); $($rest)*);
    };
}

/// `assert!` for proptest bodies: fails the current case (with optional
/// formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for proptest bodies (operands must be `Debug`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$a, &$b);
        $crate::prop_assert!(
            *__pt_l == *__pt_r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __pt_l,
            __pt_r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__pt_l, __pt_r) = (&$a, &$b);
        $crate::prop_assert!(
            *__pt_l == *__pt_r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __pt_l,
            __pt_r,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` for proptest bodies (operands must be `Debug`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$a, &$b);
        $crate::prop_assert!(
            *__pt_l != *__pt_r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __pt_l
        );
    }};
}

/// Rejects the current case (does not count towards the case budget)
/// when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
