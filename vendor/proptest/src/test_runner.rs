//! The case runner behind the [`proptest!`](crate::proptest) macro.

use rand::SeedableRng;

/// The RNG handed to strategies. Deterministic per (test name, attempt).
pub type TestRng = rand::rngs::StdRng;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Overridable like upstream proptest; the default favours suite
        // runtime over exhaustiveness.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — retried, not counted.
    Reject(String),
    /// An assertion failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `run` until `config.cases` cases pass; panics on the first
/// failing case with its seed and Debug-rendered inputs.
///
/// `run` returns the case outcome plus a rendering of the generated
/// inputs (used only in the failure message).
pub fn execute<F>(config: &ProptestConfig, name: &str, mut run: F)
where
    F: FnMut(&mut TestRng) -> (TestCaseResult, String),
{
    let base = fnv1a(name.as_bytes());
    let max_rejects = config.cases as u64 * 16 + 256;
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        let (outcome, inputs) = run(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: gave up after {rejected} rejected cases ({passed} passed)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest failed: {name}, case {passed} (seed {seed:#018x})\n{msg}\ninputs: {inputs}"
                );
            }
        }
        attempt += 1;
    }
}
