//! The [`Strategy`] trait and its core implementations: numeric ranges,
//! tuples and [`Map`] (`prop_map`).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply draws a value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A strategy that always yields clones of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
