//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the subset of the `rand` 0.8 API the codebase uses:
//! [`Rng::gen_range`] over float/integer ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through splitmix64 — fast, high
//! quality for simulation workloads, and fully deterministic for a given
//! seed, which is all the generators and tests rely on. It does **not**
//! reproduce the upstream `rand` bit streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports `Range` and `RangeInclusive` over `f64` and the common
    /// integer types. Panics on an empty range, like upstream `rand`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly; the glue behind
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random `u64` to `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let f = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + f * (hi - lo)
    }
}

/// Uniform integer in `[0, n)` by rejection-free multiply-shift
/// (Lemire's method, without the bias-correcting rejection loop; the
/// bias is < 2⁻⁶⁴·n, irrelevant for simulation workloads).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the seed into the full state and
            // guarantees a non-zero state for any seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen_range(0u64..1000) == b.gen_range(0u64..1000)).count();
        assert!(same < 8, "independent seeds should rarely collide ({same}/32)");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&v));
            let w = rng.gen_range(2.0..=4.0);
            assert!((2.0..=4.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 3];
        for _ in 0..100 {
            seen_inc[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
